(* dpa — Difference Propagation Analyzer command-line tool.

     dpa circuits                          list the benchmark suite
     dpa stats c432                        netlist statistics
     dpa faults c95                        fault-universe summary
     dpa analyze c17 --fault G3:0          one stuck-at fault in detail
     dpa analyze c17 --bridge G10,G19:and  one bridging fault in detail
     dpa lint c432 --format sarif          static testability diagnostics
     dpa profile c95                       detectability profile
     dpa atpg alu74181                     PODEM test generation
     dpa analyze file.bench --fault n1:1   analyse a user netlist *)

open Cmdliner

let load_circuit spec =
  if Sys.file_exists spec then (
    (* Malformed netlists are user input, not internal errors: a
       one-line file:line: diagnostic, never an exception backtrace. *)
    try Bench_format.parse_file spec with
    | Bench_format.Parse_error (span, msg) ->
      Printf.eprintf "%s:%d:%d: %s\n" spec span.Bench_format.line
        span.Bench_format.start_col msg;
      exit 2
    | Circuit.Malformed msg | Seq_circuit.Malformed msg ->
      Printf.eprintf "%s: %s\n" spec msg;
      exit 2)
  else
    try Bench_suite.find spec
    with Not_found ->
      Printf.eprintf
        "unknown circuit %S (not a benchmark name or a readable file)\n" spec;
      exit 2

let circuit_arg =
  let doc = "Benchmark name (see $(b,dpa circuits)) or .bench file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* ------------------------------------------------------------------ *)

let circuits_cmd =
  let run () =
    List.iter
      (fun name ->
        let c = Bench_suite.find name in
        Format.printf "%a@." Circuit.pp_summary c)
      Bench_suite.names
  in
  Cmd.v (Cmd.info "circuits" ~doc:"List the built-in benchmark suite")
    Term.(const run $ const ())

let stats_cmd =
  let run spec =
    let c = load_circuit spec in
    Format.printf "%a@." Stats.pp (Stats.compute c);
    let levels = Circuit.levels c in
    let hist = Hashtbl.create 16 in
    Array.iter
      (fun l ->
        Hashtbl.replace hist l
          (1 + Option.value (Hashtbl.find_opt hist l) ~default:0))
      levels;
    Format.printf "nets per level:@.";
    Hashtbl.fold (fun l n acc -> (l, n) :: acc) hist []
    |> List.sort Stdlib.compare
    |> List.iter (fun (l, n) -> Format.printf "  level %2d: %d@." l n)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics")
    Term.(const run $ circuit_arg)

let topo_cmd =
  let json_arg =
    let doc = "Emit the analysis as a single JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let emit_order_arg =
    let doc =
      "Print only the synthesized variable order (level to input \
       position, one integer per line) — pipe into tooling or feed \
       back as an explicit order."
    in
    Arg.(value & flag & info [ "emit-order" ] ~doc)
  in
  let run spec json emit_order =
    let c = load_circuit spec in
    let t = Topology.analyze c in
    if emit_order then
      Array.iter
        (fun p -> print_endline (string_of_int p))
        t.Topology.order
    else if json then print_endline (Topology.to_json t)
    else Format.printf "%a@." Topology.pp t
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Static topology oracle: circuit class, per-cone BDD blowup \
          prediction, and the synthesized variable order — all before \
          any BDD exists")
    Term.(const run $ circuit_arg $ json_arg $ emit_order_arg)

let faults_cmd =
  let run spec =
    let c = load_circuit spec in
    let checkpoints = Sa_fault.checkpoints c in
    let uncollapsed = Sa_fault.checkpoint_faults c in
    let collapsed = Sa_fault.collapsed_faults c in
    Format.printf "checkpoints: %d (%d PIs + %d fanout branches)@."
      (List.length checkpoints) (Circuit.num_inputs c)
      (List.length checkpoints - Circuit.num_inputs c);
    Format.printf "checkpoint faults: %d, collapsed classes: %d@."
      (List.length uncollapsed) (List.length collapsed);
    if Circuit.num_gates c <= 200 then
      Format.printf "potentially detectable NFBFs: %d@." (Bridge.count c)
    else begin
      let faults, stats = Bridge.sample ~seed:42 ~size:100 c in
      Format.printf
        "NFBF sample: %d faults from %d proposals (max wire distance %.1f)@."
        (List.length faults) stats.Bridge.proposals stats.Bridge.max_distance
    end
  in
  Cmd.v (Cmd.info "faults" ~doc:"Fault-universe summary")
    Term.(const run $ circuit_arg)

(* ------------------------------------------------------------------ *)

let net_of_name c name =
  match Circuit.index_of_name c name with
  | Some g -> g
  | None ->
    Printf.eprintf "no net named %S\n" name;
    exit 2

let parse_stuck c spec =
  match String.split_on_char ':' spec with
  | [ name; ("0" | "1") as v ] ->
    Fault.Stuck
      { Sa_fault.line = Sa_fault.Stem (net_of_name c name); value = v = "1" }
  | _ ->
    Printf.eprintf "expected NET:VALUE with VALUE 0|1, got %S\n" spec;
    exit 2

let parse_bridge c spec =
  match String.split_on_char ':' spec with
  | [ pair; kind ] ->
    (match
       (String.split_on_char ',' pair, String.lowercase_ascii kind)
     with
    | [ na; nb ], "and" ->
      Fault.Bridged
        (Bridge.make (net_of_name c na) (net_of_name c nb) Bridge.Wired_and)
    | [ na; nb ], "or" ->
      Fault.Bridged
        (Bridge.make (net_of_name c na) (net_of_name c nb) Bridge.Wired_or)
    | _ ->
      Printf.eprintf "expected NETA,NETB:KIND with KIND and|or, got %S\n" spec;
      exit 2)
  | _ ->
    Printf.eprintf "expected NETA,NETB:KIND, got %S\n" spec;
    exit 2

let scheduler_arg ?(default = Engine.Static) () =
  let doc =
    "Sweep scheduler: $(b,static) fixes contiguous fault shards up front, \
     $(b,stealing) has idle domains pull cone-grouped batches off a shared \
     queue (each with a private manager), $(b,snapshot) builds the good \
     functions once, seals the arena, and forks it read-only per domain.  \
     Exact results are bit-identical in every mode."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("static", Engine.Static);
             ("stealing", Engine.Stealing);
             ("snapshot", Engine.Snapshot);
           ])
        default
    & info [ "scheduler" ] ~docv:"MODE" ~doc)

let reorder_arg =
  let doc =
    "Reorder-rescue rung of the degradation ladder: $(b,auto) (the \
     default) rebuilds the good functions under a sifted variable order \
     and retries a fault that exhausted its escalated retries, before \
     it falls back to a bounded estimate.  $(b,off) disables the rung \
     (the pre-rescue three-stage ladder).  Only consulted when \
     $(b,--fault-budget) or $(b,--deadline-ms) caps the analysis — an \
     uncapped sweep cannot degrade, so there is nothing to rescue."
  in
  Arg.(
    value
    & opt (enum [ ("auto", true); ("off", false) ]) true
    & info [ "reorder" ] ~docv:"MODE" ~doc)

let reorder_growth_arg =
  let doc =
    "Growth cap for rescue-order sifting: a sift step that grows the \
     live arena past this factor of its starting size is undone.  Must \
     be >= 1.0."
  in
  Arg.(
    value
    & opt float Engine.default_reorder_growth
    & info [ "reorder-growth" ] ~docv:"FACTOR" ~doc)

let check_reorder_growth g =
  if g < 1.0 then begin
    Printf.eprintf "--reorder-growth must be >= 1.0, got %g\n" g;
    exit 2
  end

let epochs_arg =
  let doc =
    "Epoch-based scratch reclamation: $(b,on) (the default) brackets each \
     fault's scratch allocations in a region that is reclaimed wholesale \
     when the fault completes, replacing most mark-and-compact collections \
     with O(region) resets.  $(b,off) restores the collect-only GC policy.  \
     Exact results are identical either way."
  in
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "epochs" ] ~docv:"MODE" ~doc)

let epoch_nodes_arg =
  let doc =
    "Close (and reclaim) an open epoch early once its region holds $(docv) \
     scratch nodes, so per-fault regions cannot grow without bound."
  in
  Arg.(
    value
    & opt int Engine.default_epoch_nodes
    & info [ "epoch-nodes" ] ~docv:"NODES" ~doc)

(* Sweep mode: every collapsed stuck-at fault, an outcome for each,
   optionally journaled for kill-and-resume.  Exit code 0 means every
   fault got a numeric answer (exact or bounded); 1 means some fault
   crashed or was left degraded without bounds; 2 is a usage or input
   error (including a stale journal). *)
let run_sweep c ~fault_budget ~deadline_ms ~max_retries ~reorder
    ~reorder_growth ~bounds ~samples ~checkpoint ~resume ~escalate ~json
    ~domains ~scheduler ~epochs ~epoch_nodes =
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
  in
  let n = List.length faults in
  let faults_arr = Array.of_list faults in
  let digest = Journal.digest c faults in
  (* Checkpointing needs byte-identical resume, which only the
     canonical-arena deterministic mode guarantees. *)
  let deterministic = checkpoint <> None in
  let table, sink =
    match checkpoint with
    | None -> (Hashtbl.create 1, None)
    | Some path ->
      (* Two writers interleaving appends would corrupt the journal in
         ways load cannot distinguish from a torn tail, so the file is
         guarded by an exclusive lock.  A dead holder's lock is stale
         and broken transparently — only a live second writer refuses. *)
      (match Journal.acquire_writer_lock ~path () with
      | Error reason ->
        Printf.eprintf "%s: %s\n" path reason;
        exit 2
      | Ok lock -> at_exit (fun () -> Journal.release_writer_lock lock));
      if resume && Sys.file_exists path then begin
        match Journal.load ~path ~digest ~faults:faults_arr with
        | Ok table ->
          Format.printf "resuming: %d of %d outcomes journaled in %s@."
            (Hashtbl.length table) n path;
          (table, Some (Journal.reopen ~path ()))
        | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
      end
      else (Hashtbl.create 1, Some (Journal.create ~path ~digest ~faults:n ()))
  in
  (* A polite kill (SIGINT/SIGTERM) flushes the pending fsync batch
     before dying, so up to sync_every freshly computed outcomes are
     not lost to an unlucky ^C.  [sync_now] is lock-free, hence safe
     from a handler that may have interrupted a mid-append worker; the
     process then re-kills itself under the default disposition so the
     exit status still reports the signal.  (The writer lock is left
     for the next run to break as stale — its holder pid is dead.) *)
  Option.iter
    (fun s ->
      let flush_and_die signal =
        Journal.sync_now s;
        Sys.set_signal signal Sys.Signal_default;
        Unix.kill (Unix.getpid ()) signal
      in
      Sys.set_signal Sys.sigint (Sys.Signal_handle flush_and_die);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle flush_and_die))
    sink;
  let journal = Journal.engine_journal ?sink table in
  let outcomes =
    Engine.analyze_all ?fault_budget ?deadline_ms ~max_retries ~reorder
      ~reorder_growth ~bounds ~bound_samples:samples ~deterministic ~journal
      ~domains ~scheduler ~epochs ~epoch_nodes (Engine.create c) faults
  in
  let outcomes =
    if not escalate then outcomes
    else begin
      (* Opt-in second pass: degraded faults get one more go with the
         whole retry ladder shifted up (2x budget and deadline); a fresh
         Exact replaces the journaled estimate. *)
      let degraded =
        List.filteri (fun _ (_, o) -> not (Engine.is_exact o))
          (List.mapi (fun i o -> (i, o)) outcomes)
      in
      if degraded = [] then outcomes
      else begin
        let retried =
          Engine.analyze_all
            ?fault_budget:(Option.map (fun b -> 2 * b) fault_budget)
            ?deadline_ms:(Option.map (fun d -> 2.0 *. d) deadline_ms)
            ~max_retries ~reorder ~reorder_growth ~bounds
            ~bound_samples:samples ~deterministic ~domains ~scheduler ~epochs
            ~epoch_nodes (Engine.create c)
            (List.map (fun (i, _) -> faults_arr.(i)) degraded)
        in
        let improved = Hashtbl.create 16 in
        List.iter2
          (fun (i, _) fresh ->
            if Engine.is_exact fresh then begin
              Hashtbl.replace improved i fresh;
              Option.iter (fun s -> Journal.append s i fresh) sink
            end)
          degraded retried;
        List.mapi
          (fun i o -> Option.value (Hashtbl.find_opt improved i) ~default:o)
          outcomes
      end
    end
  in
  Option.iter Journal.close sink;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Journal.header_line ~digest ~faults:n);
      output_char oc '\n';
      List.iteri
        (fun i o ->
          output_string oc (Journal.outcome_line i o);
          output_char oc '\n')
        outcomes;
      close_out oc)
    json;
  let count p = List.length (List.filter p outcomes) in
  let exact = count Engine.is_exact in
  let bounded =
    count (function Engine.Bounded _ -> true | _ -> false)
  in
  let unbounded =
    count (function
      | Engine.Budget_exceeded _ | Engine.Deadline_exceeded _ -> true
      | _ -> false)
  in
  let crashed = count (function Engine.Crashed _ -> true | _ -> false) in
  let rescued =
    count (function
      | Engine.Exact r -> r.Engine.rescued_by_reorder
      | _ -> false)
  in
  Format.printf
    "swept %d collapsed stuck-at faults: %d exact, %d bounded, %d degraded \
     without bounds, %d crashed@."
    n exact bounded unbounded crashed;
  if rescued > 0 then
    Format.printf
      "  (%d of the exact answers came from the reorder-rescue rung: exact \
       only after the sifted-order retry)@."
      rescued;
  if bounded > 0 then begin
    let widths =
      List.filter_map
        (fun o ->
          match o with
          | Engine.Bounded _ ->
            Option.map (fun (lo, up) -> up -. lo) (Engine.outcome_bounds o)
          | _ -> None)
        outcomes
    in
    let worst = List.fold_left Float.max 0.0 widths in
    let mean =
      List.fold_left ( +. ) 0.0 widths /. float_of_int (List.length widths)
    in
    Format.printf "bound widths: mean %.6f, worst %.6f@." mean worst
  end;
  List.iteri
    (fun i o ->
      if not (Engine.is_exact o) then
        Format.printf "  [%d] %s@." i (Engine.outcome_to_string c o))
    outcomes;
  if crashed > 0 || unbounded > 0 then exit 1 else exit 0

let run_single c fault ~cubes ~fault_budget ~deadline_ms ~max_retries
    ~reorder ~reorder_growth ~bounds ~samples ~scheduler ~epochs ~epoch_nodes
    =
  Format.printf "fault: %s@." (Fault.to_string c fault);
  let engine = Engine.create c in
  let r =
    match
      Engine.analyze_all ?fault_budget ?deadline_ms ~max_retries ~reorder
        ~reorder_growth ~bounds ~bound_samples:samples ~scheduler ~epochs
        ~epoch_nodes engine [ fault ]
    with
    | [ Engine.Exact r ] -> r
    | [ Engine.Bounded { lower; upper; syndrome_bound; samples; reason; _ } ]
      ->
      (* Degraded but numerically answered: that is a success. *)
      Format.printf
        "detectability in [%.6f, %.6f] (Wilson interval, %d random \
         vectors)@."
        lower
        (Float.min upper syndrome_bound)
        samples;
      Format.printf "syndrome upper bound: %.6f@." syndrome_bound;
      Format.printf "exact analysis degraded: %s@."
        (Engine.degrade_reason_to_string reason);
      exit 0
    | [ (Engine.Budget_exceeded _ | Engine.Deadline_exceeded _) as o ] ->
      Format.printf "DEGRADED after %d retries — %s@." max_retries
        (Engine.outcome_to_string c o);
      exit 1
    | [ (Engine.Crashed _ as o) ] ->
      Format.printf "CRASHED — %s@." (Engine.outcome_to_string c o);
      exit 1
    | _ -> assert false
  in
  Format.printf "detectability: %.6f (%g test vectors of 2^%d)@."
    r.Engine.detectability r.Engine.test_count (Circuit.num_inputs c);
  if r.Engine.rescued_by_reorder then
    Format.printf
      "rescued by reordering: the heuristic-order attempts all degraded; \
       this exact answer needed the sifted variable order@.";
  Format.printf "upper bound: %.6f  adherence: %s@." r.Engine.upper_bound
    (match r.Engine.adherence with
    | Some a -> Printf.sprintf "%.6f" a
    | None -> "n/a");
  Format.printf "POs fed: %d  POs observing: %d@." r.Engine.pos_fed
    r.Engine.pos_observed;
  (match r.Engine.wired_support with
  | Some n ->
    Format.printf "wired-function support: %d variable(s)%s@." n
      (if n = 0 then " — degenerates to stuck-at behaviour" else "")
  | None -> ());
  if r.Engine.detectable then begin
    Format.printf "test cubes (input=value, unlisted are don't-care):@.";
    List.iter
      (fun cube ->
        let literal (pos, value) =
          Printf.sprintf "%s=%d"
            (Circuit.gate c c.Circuit.inputs.(pos)).Circuit.name
            (Bool.to_int value)
        in
        Format.printf "  %s@." (String.concat " " (List.map literal cube)))
      (Engine.test_cubes ~limit:cubes engine fault)
  end
  else Format.printf "fault is undetectable (redundant)@."

let analyze_cmd =
  let stuck =
    let doc = "Stuck-at fault as NET:VALUE (e.g. G10:0)." in
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)
  in
  let bridge =
    let doc = "Bridging fault as NETA,NETB:KIND with KIND and|or." in
    Arg.(value & opt (some string) None & info [ "bridge" ] ~docv:"SPEC" ~doc)
  in
  let all =
    let doc =
      "Sweep every collapsed stuck-at fault instead of analysing one \
       fault.  Implied by $(b,--checkpoint), $(b,--resume) and \
       $(b,--json)."
    in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let cubes =
    let doc = "Print up to $(docv) test cubes." in
    Arg.(value & opt int 8 & info [ "cubes" ] ~docv:"N" ~doc)
  in
  let fault_budget =
    let doc =
      "Cap the analysis at $(docv) freshly allocated BDD nodes per \
       attempt; a blown budget degrades the fault instead of growing the \
       arena unboundedly."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-budget" ] ~docv:"NODES" ~doc)
  in
  let deadline_ms =
    let doc =
      "Cap each analysis attempt at $(docv) wall-clock milliseconds; an \
       expired deadline degrades the fault instead of wedging the sweep."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_retries =
    let doc =
      "Re-run a failed analysis up to $(docv) times, each on a fresh \
       manager with the budget and deadline doubled (2x, 4x, ...)."
    in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let no_bounds =
    let doc =
      "Leave budget- and deadline-degraded faults as raw degradations \
       instead of estimating bounded detectability for them (and exit \
       nonzero when any fault degrades)."
    in
    Arg.(value & flag & info [ "no-bounds" ] ~doc)
  in
  let samples =
    let doc =
      "Random vectors per bounded-detectability estimate (rounded up to \
       whole 64-pattern words)."
    in
    Arg.(
      value
      & opt int Engine.default_bound_samples
      & info [ "samples" ] ~docv:"N" ~doc)
  in
  let checkpoint =
    let doc =
      "Append every outcome to the JSON-lines journal $(docv) as the \
       sweep runs (fsync'd in batches), so a killed sweep can continue \
       with $(b,--resume).  Implies the deterministic sweep mode: the \
       BDD arena is compacted to its canonical form before every fault, \
       making outcomes independent of scheduling and of where a previous \
       run was killed."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let resume =
    let doc =
      "Reuse outcomes journaled in the $(b,--checkpoint) file by an \
       earlier (killed) run instead of recomputing them.  A journal \
       written for a different circuit or fault list is rejected.  The \
       completed sweep's report is byte-identical to an uninterrupted \
       run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let escalate =
    let doc =
      "After the sweep, re-attempt every non-exact fault once more with \
       the whole retry ladder shifted up (double budget and deadline); \
       fresh exact results replace the bounded estimates."
    in
    Arg.(value & flag & info [ "escalate" ] ~doc)
  in
  let json =
    let doc =
      "Write the final outcome of every fault to $(docv) in the journal's \
       JSON-lines format, in fault-index order."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let domains =
    let doc = "Worker domains for a sweep." in
    Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let run spec stuck bridge all cubes fault_budget deadline_ms max_retries
      reorder reorder_growth no_bounds samples checkpoint resume escalate
      json domains scheduler epochs epoch_nodes =
    let c = load_circuit spec in
    check_reorder_growth reorder_growth;
    let bounds = not no_bounds in
    let sweep_mode =
      all || checkpoint <> None || resume || json <> None
    in
    if resume && checkpoint = None then begin
      Printf.eprintf "--resume needs --checkpoint FILE to name the journal\n";
      exit 2
    end;
    if sweep_mode then begin
      if stuck <> None || bridge <> None then begin
        Printf.eprintf
          "--all sweeps the collapsed stuck-at faults; drop --fault/--bridge\n";
        exit 2
      end;
      run_sweep c ~fault_budget ~deadline_ms ~max_retries ~reorder
        ~reorder_growth ~bounds ~samples ~checkpoint ~resume ~escalate ~json
        ~domains ~scheduler ~epochs ~epoch_nodes
    end
    else
      let fault =
        match (stuck, bridge) with
        | Some s, None -> parse_stuck c s
        | None, Some b -> parse_bridge c b
        | Some _, Some _ | None, None ->
          Printf.eprintf "give exactly one of --fault or --bridge (or --all)\n";
          exit 2
      in
      run_single c fault ~cubes ~fault_budget ~deadline_ms ~max_retries
        ~reorder ~reorder_growth ~bounds ~samples ~scheduler ~epochs
        ~epoch_nodes
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Exact analysis of a single fault, or a deadline-supervised sweep \
          of every collapsed fault with checkpoint/resume")
    Term.(
      const run $ circuit_arg $ stuck $ bridge $ all $ cubes $ fault_budget
      $ deadline_ms $ max_retries $ reorder_arg $ reorder_growth_arg
      $ no_bounds $ samples $ checkpoint $ resume $ escalate $ json $ domains
      $ scheduler_arg () $ epochs_arg $ epoch_nodes_arg)

let profile_cmd =
  let bins =
    let doc = "Histogram bins." in
    Arg.(value & opt int 10 & info [ "bins" ] ~docv:"N" ~doc)
  in
  let fault_budget =
    let doc =
      "Cap each fault's analysis at $(docv) freshly allocated BDD nodes \
       per attempt; degraded faults are excluded from the profile."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-budget" ] ~docv:"NODES" ~doc)
  in
  let deadline_ms =
    let doc =
      "Cap each fault's analysis attempt at $(docv) wall-clock \
       milliseconds; degraded faults are excluded from the profile."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let domains =
    let doc =
      "Worker domains for the fault sweep (default: all the hardware \
       offers).  Results are identical at any count."
    in
    Arg.(
      value
      & opt int (Parallel.available_domains ())
      & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let mem_profile =
    let doc =
      "Record birth and death of every scratch BDD node on the logical \
       apply-step clock and print the lifetime histogram after the sweep.  \
       Forces a single-domain $(b,static) sweep so the histogram covers \
       the whole fault set on one arena; the output is deterministic \
       (no wall-clock data)."
    in
    Arg.(value & flag & info [ "mem-profile" ] ~doc)
  in
  let run spec bins fault_budget deadline_ms reorder reorder_growth domains
      scheduler epochs epoch_nodes mem_profile =
    let c = load_circuit spec in
    check_reorder_growth reorder_growth;
    let domains, scheduler =
      if mem_profile then (1, Engine.Static) else (domains, scheduler)
    in
    let engine = Engine.create ~mem_profile c in
    let outcomes, stats =
      Engine.analyze_all_stats ?fault_budget ?deadline_ms ~reorder
        ~reorder_growth ~domains ~scheduler ~epochs ~epoch_nodes engine
        (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
    in
    Format.printf
      "sweep: %s scheduler, %d domain%s (%d in hardware)@.\
       good functions built: %d@.snapshot build: %.3fs (symbolic build \
       %.3fs)@.per-domain scratch arena peak: %d nodes@.analysis: %.3fs \
       wall, %.3fs cpu across domains@."
      (Engine.scheduler_to_string stats.Engine.scheduler)
      stats.Engine.domains
      (if stats.Engine.domains = 1 then "" else "s")
      stats.Engine.hardware_domains stats.Engine.good_functions_built
      stats.Engine.snapshot_seconds stats.Engine.build_seconds
      stats.Engine.scratch_peak_nodes stats.Engine.analysis_wall_seconds
      stats.Engine.analysis_cpu_seconds;
    if stats.Engine.rescued_faults > 0 then
      Format.printf
        "reorder rescues: %d fault(s) exact only under the sifted order \
         (sift %.3fs, arena %d -> %d nodes)@."
        stats.Engine.rescued_faults stats.Engine.sift_seconds
        stats.Engine.sift_nodes_before stats.Engine.sift_nodes_after;
    if stats.Engine.epoch_resets > 0 then
      Format.printf
        "epochs: %d region reset(s), %d node(s) tenured, gc %.3fs across \
         %d collection(s)@."
        stats.Engine.epoch_resets stats.Engine.tenured_nodes
        stats.Engine.gc_seconds stats.Engine.gc_collections;
    if stats.Engine.warm_cache_hits > 0 then
      Format.printf "warm op-cache hits across forks: %d@."
        stats.Engine.warm_cache_hits;
    let results = Engine.exact_results outcomes in
    (match Engine.degraded outcomes with
    | [] -> ()
    | bad ->
      Format.printf "degraded faults (excluded from the profile): %d@."
        (List.length bad);
      List.iter
        (fun o -> Format.printf "  %s@." (Engine.outcome_to_string c o))
        bad);
    let detectable = List.filter (fun r -> r.Engine.detectable) results in
    Format.printf "%d collapsed checkpoint faults, %d detectable@."
      (List.length results) (List.length detectable);
    let detectabilities =
      List.map (fun r -> r.Engine.detectability) detectable
    in
    Histogram.pp Format.std_formatter (Histogram.make ~bins detectabilities);
    Format.printf "mean detectability: %.4f@." (Histogram.mean detectabilities);
    Po_stats.pp Format.std_formatter (Po_stats.summarize results);
    if mem_profile then begin
      let p = Bdd.lifetime_profile (Engine.manager engine) in
      Format.printf
        "@.scratch-node lifetime profile (logical clock = apply steps):@.\
         clock %d steps; %d death(s) observed; %d scratch live, %d frozen@."
        p.Bdd.lp_clock p.Bdd.lp_deaths p.Bdd.lp_live p.Bdd.lp_frozen;
      let width = 44 in
      let peak =
        Array.fold_left max 1 p.Bdd.lp_buckets
      in
      Array.iteri
        (fun b n ->
          if n > 0 then begin
            let label =
              if b = 0 then "       sub-step"
              else Printf.sprintf "[2^%02d, 2^%02d)" (b - 1) b
            in
            Format.printf "  %-15s %9d %s@." label n
              (String.make (max 1 (n * width / peak)) '#')
          end)
        p.Bdd.lp_buckets
    end
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Stuck-at detectability profile of a circuit")
    Term.(
      const run $ circuit_arg $ bins $ fault_budget $ deadline_ms
      $ reorder_arg $ reorder_growth_arg $ domains
      $ scheduler_arg ~default:Engine.Snapshot ()
      $ epochs_arg $ epoch_nodes_arg $ mem_profile)

let atpg_cmd =
  let run spec =
    let c = load_circuit spec in
    let faults = Sa_fault.collapsed_faults c in
    let r = Podem.run_all c faults in
    Format.printf
      "PODEM over %d faults: %d explicit tests, %d redundant, %d aborted, \
       coverage %.4f@."
      (List.length faults)
      (List.length r.Podem.tests)
      (List.length r.Podem.redundant)
      (List.length r.Podem.aborted)
      r.Podem.coverage
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"PODEM test generation over the checkpoint faults")
    Term.(const run $ circuit_arg)

let equiv_cmd =
  let other =
    let doc = "Second circuit (benchmark name or .bench file)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CIRCUIT2" ~doc)
  in
  let run spec1 spec2 =
    let c1 = load_circuit spec1 and c2 = load_circuit spec2 in
    let verdict = Equiv.check c1 c2 in
    Format.printf "%a@." (Equiv.pp_verdict c1) verdict;
    match verdict with Equiv.Equivalent -> exit 0 | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Formal equivalence check of two circuits (positional I/O match)")
    Term.(const run $ circuit_arg $ other)

let scoap_cmd =
  let run spec =
    let c = load_circuit spec in
    let m = Scoap.compute c in
    if Circuit.num_gates c <= 120 then Scoap.pp c Format.std_formatter m
    else begin
      (* Too big for a per-net table: summarise per level. *)
      let levels = Circuit.levels c in
      let table = Hashtbl.create 32 in
      Array.iteri
        (fun g _ ->
          let co = Scoap.observability m g in
          if co <> max_int then begin
            let sum, n =
              Option.value (Hashtbl.find_opt table levels.(g)) ~default:(0, 0)
            in
            Hashtbl.replace table levels.(g) (sum + co, n + 1)
          end)
        c.Circuit.gates;
      Format.printf "  %-7s %10s@." "level" "mean CO";
      Hashtbl.fold (fun l v acc -> (l, v) :: acc) table []
      |> List.sort Stdlib.compare
      |> List.iter (fun (l, (sum, n)) ->
             Format.printf "  %-7d %10.1f@." l
               (float_of_int sum /. float_of_int n))
    end
  in
  Cmd.v
    (Cmd.info "scoap" ~doc:"SCOAP controllability/observability measures")
    Term.(const run $ circuit_arg)

let dot_cmd =
  let net =
    let doc = "Render the OBDD of net $(docv)'s good function instead of \
               the netlist." in
    Arg.(value & opt (some string) None & info [ "net" ] ~docv:"NET" ~doc)
  in
  let fault =
    let doc = "Highlight the sites of a stuck-at fault (NET:VALUE)." in
    Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)
  in
  let run spec net fault =
    let c = load_circuit spec in
    match net with
    | Some name ->
      let sym = Symbolic.build c in
      print_string (Dot.node_function sym (net_of_name c name))
    | None ->
      let highlight =
        match fault with
        | Some s -> Fault.sites (parse_stuck c s)
        | None -> []
      in
      print_string (Dot.circuit ~highlight c)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Graphviz rendering of a netlist or a net's OBDD")
    Term.(const run $ circuit_arg $ net $ fault)

(* ------------------------------------------------------------------ *)

(* dpa lint — static testability analysis.  Exit-code contract (same
   shape as dpa analyze): 0 = clean at the --fail-on threshold, 1 =
   findings at or above it, 2 = usage error or unparseable input. *)
let lint_cmd =
  let format_arg =
    let doc = "Output format: $(b,text), $(b,json) or $(b,sarif) (2.1.0)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let rules_arg =
    let doc =
      "Comma-separated rule ids to run (e.g. $(b,DP001,DP008)); default: all."
    in
    Arg.(
      value
      & opt (some (list ~sep:',' string)) None
      & info [ "rules" ] ~docv:"IDS" ~doc)
  in
  let fail_on =
    let doc =
      "Exit 1 when any finding at or above this severity survives the \
       baseline: $(b,error), $(b,warning), $(b,info), or $(b,never)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("error", Some Diagnostic.Error);
               ("warning", Some Diagnostic.Warning);
               ("info", Some Diagnostic.Info);
               ("never", None);
             ])
          (Some Diagnostic.Error)
      & info [ "fail-on" ] ~docv:"SEV" ~doc)
  in
  let baseline_arg =
    let doc =
      "Suppress findings whose fingerprints appear in this baseline file."
    in
    Arg.(
      value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let write_baseline =
    let doc =
      "Write the surviving findings' fingerprints to $(docv) (freezing \
       them for future --baseline runs) and exit 0."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE" ~doc)
  in
  let no_verify =
    let doc =
      "Skip the exact Difference Propagation confirmation of \
       \"definitely redundant\" verdicts (structure-only proofs)."
    in
    Arg.(value & flag & info [ "no-verify" ] ~doc)
  in
  let bdd_budget =
    let doc =
      "Node budget of the BDD constancy tier of DP008; 0 disables it."
    in
    Arg.(
      value
      & opt int Lint.default_config.Lint.bdd_budget
      & info [ "bdd-budget" ] ~docv:"NODES" ~doc)
  in
  let list_rules =
    let doc = "List the rule registry and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let lint_circuit_arg =
    let doc = "Benchmark name (see $(b,dpa circuits)) or .bench file path." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)
  in
  let run spec format rules fail_on baseline write_baseline no_verify
      bdd_budget list_rules =
    if list_rules then begin
      List.iter
        (fun (r : Lint.rule) ->
          Format.printf "%s  %-20s %-8s %-15s %s@." r.Lint.id r.Lint.name
            (Diagnostic.severity_to_string r.Lint.default_severity)
            (Lint.tier_to_string r.Lint.tier)
            r.Lint.summary)
        Lint.rules;
      exit 0
    end;
    let spec =
      match spec with
      | Some s -> s
      | None ->
        Printf.eprintf "dpa lint: a CIRCUIT argument is required\n";
        exit 2
    in
    let config =
      { Lint.default_config with Lint.rules; verify = not no_verify; bdd_budget }
    in
    let diags, uri =
      try
        if Sys.file_exists spec then
          let diags, _ = Lint.run_file ~config spec in
          (diags, spec)
        else
          let c =
            try Bench_suite.find spec
            with Not_found ->
              Printf.eprintf
                "unknown circuit %S (not a benchmark name or a readable \
                 file)\n"
                spec;
              exit 2
          in
          (Lint.run ~config c, spec ^ ".bench")
      with
      | Bench_format.Parse_error (span, msg) ->
        Printf.eprintf "%s:%d:%d: %s\n" spec span.Bench_format.line
          span.Bench_format.start_col msg;
        exit 2
      | Lint.Unknown_rule id ->
        Printf.eprintf "unknown lint rule %S (see dpa lint --list-rules)\n" id;
        exit 2
    in
    let diags =
      match baseline with
      | None -> diags
      | Some path ->
        (try Baseline.filter (Baseline.load path) diags with
        | Baseline.Malformed msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
        | Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2)
    in
    (match write_baseline with
    | Some path ->
      Baseline.save path diags;
      Format.printf "baseline: froze %d finding(s) into %s@."
        (List.length diags) path;
      exit 0
    | None -> ());
    (match format with
    | `Text ->
      List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) diags;
      let count sev =
        List.length (List.filter (fun d -> d.Diagnostic.severity = sev) diags)
      in
      Format.printf "%d error(s), %d warning(s), %d info@."
        (count Diagnostic.Error) (count Diagnostic.Warning)
        (count Diagnostic.Info)
    | `Json -> print_endline (Sarif.render_json ~uri diags)
    | `Sarif -> print_endline (Sarif.render ~uri diags));
    match fail_on with
    | Some threshold
      when List.exists
             (fun d ->
               Diagnostic.severity_rank d.Diagnostic.severity
               >= Diagnostic.severity_rank threshold)
             diags ->
      exit 1
    | _ -> exit 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static testability analysis: structural, testability and \
          bridge-topology rules with exact-engine-confirmed redundancy \
          verdicts")
    Term.(
      const run $ lint_circuit_arg $ format_arg $ rules_arg $ fail_on
      $ baseline_arg $ write_baseline $ no_verify $ bdd_budget $ list_rules)

(* ------------------------------------------------------------------ *)

(* dpa serve — the resident analysis daemon.  Exit-code contract: 0 =
   clean drain (signal or shutdown request), 2 = usage error or a
   socket/state-dir conflict.  Request-level failures are the client's
   business (busy / error response lines), never the daemon's exit
   code. *)
let serve_cmd =
  let socket_arg =
    let doc =
      "Unix socket path to listen on (default: $(b,dpa.sock) inside \
       $(b,--state-dir), or the working directory without one).  A \
       leftover socket file with no live listener behind it is \
       reclaimed; a live one is refused."
    in
    Arg.(
      value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc =
      "Listen on HOST:PORT instead of a Unix socket.  Port 0 binds an \
       ephemeral port, printed on startup."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let state_dir_arg =
    let doc =
      "Journal directory for crash-durable sweeps: every analyze \
       request checkpoints to $(docv)/<digest>-<opts>.jsonl, and a \
       killed server restarted on the same directory re-serves the \
       completed prefix byte-identically before resuming.  Without it \
       the daemon is fast but forgetful."
    in
    Arg.(
      value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let workers_arg =
    let doc = "Worker threads draining the request queue." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission-queue bound: requests beyond $(docv) queued jobs are \
       refused with a $(b,busy) response and a retry-after hint instead \
       of buffering without limit."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc =
      "Resident-circuit LRU capacity: elaborated circuits and their \
       sealed good-function arenas kept warm between requests."
    in
    Arg.(value & opt int 8 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains per sweep." in
    Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let sync_every_arg =
    let doc = "Journal fsync batch size (smaller = more crash-durable)." in
    Arg.(value & opt int 8 & info [ "sync-every" ] ~docv:"N" ~doc)
  in
  let verbose_arg =
    let doc = "Log admissions, resumes and drains to stderr." in
    Arg.(value & flag & info [ "verbose" ] ~doc)
  in
  let run socket tcp state_dir workers queue cache domains scheduler
      sync_every verbose =
    let addr =
      match (tcp, socket) with
      | Some _, Some _ ->
        Printf.eprintf "give --socket or --tcp, not both\n";
        exit 2
      | Some hp, None -> (
        match String.rindex_opt hp ':' with
        | Some i -> (
          let host = String.sub hp 0 i in
          let port = String.sub hp (i + 1) (String.length hp - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 -> Server.Tcp (host, p)
          | _ ->
            Printf.eprintf "--tcp wants HOST:PORT, got %S\n" hp;
            exit 2)
        | None ->
          Printf.eprintf "--tcp wants HOST:PORT, got %S\n" hp;
          exit 2)
      | None, Some path -> Server.Unix_socket path
      | None, None ->
        Server.Unix_socket
          (Filename.concat (Option.value state_dir ~default:".") "dpa.sock")
    in
    let config =
      {
        Server.socket = addr;
        state_dir;
        workers = max 1 workers;
        queue_capacity = max 1 queue;
        cache_capacity = max 1 cache;
        domains = max 1 domains;
        scheduler;
        sync_every = max 1 sync_every;
        verbose;
      }
    in
    let server =
      try Server.start config with
      | Failure msg ->
        Printf.eprintf "dpa serve: %s\n" msg;
        exit 2
      | Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "dpa serve: %s: %s (%s)\n" fn
          (Unix.error_message err) arg;
        exit 2
      | Invalid_argument msg ->
        Printf.eprintf "dpa serve: %s\n" msg;
        exit 2
    in
    (match addr with
    | Server.Unix_socket path ->
      Format.printf "dpa serve: listening on %s@." path
    | Server.Tcp (host, _) ->
      Format.printf "dpa serve: listening on %s:%d@." host
        (Option.value (Server.port server) ~default:0));
    (* Dead clients must not kill the daemon: writes to a closed socket
       become Sys_error (handled per connection), not SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* Graceful drain on a polite kill: one atomic store from the
       handler; the accept loop notices within 250 ms, stops admitting,
       and the workers finish every queued and in-flight sweep (and
       their journal fsyncs) before the process exits. *)
    let drain _ = Server.request_stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    Server.wait server;
    Format.printf "dpa serve: drained@.";
    exit 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident analysis daemon: JSON-lines requests over a socket, \
          coalesced streaming sweeps, bounded admission, and \
          journal-backed crash resume")
    Term.(
      const run $ socket_arg $ tcp_arg $ state_dir_arg $ workers_arg
      $ queue_arg $ cache_arg $ domains_arg
      $ scheduler_arg ~default:Engine.Snapshot ()
      $ sync_every_arg $ verbose_arg)

let main =
  let doc = "exact fault analysis by Difference Propagation (DAC 1990)" in
  let info = Cmd.info "dpa" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      circuits_cmd;
      stats_cmd;
      topo_cmd;
      faults_cmd;
      analyze_cmd;
      lint_cmd;
      profile_cmd;
      atpg_cmd;
      equiv_cmd;
      scoap_cmd;
      dot_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval main)
