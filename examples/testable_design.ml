(* Testable design, guided by the paper's Figure 3 analysis: the
   detectability bathtub says faults deep in the circuit (far from any
   primary output) are the hard ones, and that detectability correlates
   more with observability than with controllability.  This example
   measures exact detectability on the alu74181, then inserts DFT
   hardware at the "circuit centre" and quantifies the improvement —
   comparing an observation point against a control point, as the paper
   asks ("Should the emphasis be placed on additional control lines or
   observation points?").

     dune exec examples/testable_design.exe *)

let mean_detectability circuit =
  let engine = Engine.create circuit in
  let results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults circuit))
  in
  let detectable = List.filter (fun r -> r.Engine.detectable) results in
  let undetectable = List.length results - List.length detectable in
  let mean =
    List.fold_left (fun a r -> a +. r.Engine.detectability) 0.0 detectable
    /. float_of_int (max 1 (List.length detectable))
  in
  (mean, undetectable, results)

(* The deepest point of the bathtub: the net furthest from both the
   inputs and the outputs — hard to control and hard to observe. *)
let circuit_centre circuit =
  let dist = Circuit.max_levels_to_po circuit in
  let levels = Circuit.levels circuit in
  let score g = min levels.(g) dist.(g) in
  let best = ref 0 in
  for g = 1 to Circuit.num_gates circuit - 1 do
    if score g > score !best then best := g
  done;
  !best

let () =
  let base = Bench_suite.find "alu74181" in
  Format.printf "base circuit: %a@.@." Circuit.pp_summary base;
  let base_mean, base_undet, base_results = mean_detectability base in
  Format.printf "mean detectability (detectable faults): %.4f, undetectable: %d@."
    base_mean base_undet;

  (* Where is the bathtub deepest? *)
  let points = Bathtub.by_po_distance base base_results in
  Format.printf "@.detectability vs max levels to PO:@.";
  Bathtub.pp Format.std_formatter points;

  let centre = circuit_centre base in
  Format.printf
    "@.circuit centre: net %s (level %d from the PIs, max %d levels to a PO)@."
    (Circuit.gate base centre).Circuit.name
    (Circuit.levels base).(centre)
    (Circuit.max_levels_to_po base).(centre);

  (* DFT move 1: make the centre observable. *)
  let observed = Transform.add_observation_points base [ centre ] in
  let obs_mean, obs_undet, _ = mean_detectability observed in
  Format.printf "@.with an observation point there:@.";
  Format.printf "  mean detectability %.4f (%+.1f%%), undetectable %d@."
    obs_mean
    ((obs_mean -. base_mean) /. base_mean *. 100.0)
    obs_undet;

  (* DFT move 2: make the centre controllable instead. *)
  let controlled = Transform.add_control_point base ~net:centre ~polarity:`Force0 in
  let ctl_mean, ctl_undet, _ = mean_detectability controlled in
  Format.printf "with a control point there:@.";
  Format.printf "  mean detectability %.4f (%+.1f%%), undetectable %d@."
    ctl_mean
    ((ctl_mean -. base_mean) /. base_mean *. 100.0)
    ctl_undet;

  Format.printf
    "@.the paper's conclusion — detectability is best increased through \
     enhanced observability — %s on this circuit.@."
    (if obs_mean >= ctl_mean then "HOLDS" else "does not hold")
