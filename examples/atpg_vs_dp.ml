(* Conventional ATPG (PODEM) versus Difference Propagation on the same
   fault list.  PODEM finds *one* test per fault; DP computes the
   *complete* test set — one engine pass gives the exact detectability,
   redundancy proofs for free, and vectors on demand.  This example
   verifies the two agree fault by fault and shows what the extra
   functional information buys (compact test selection by picking
   high-coverage vectors).

     dune exec examples/atpg_vs_dp.exe [circuit] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "alu74181" in
  let circuit = Bench_suite.find name in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;
  let faults = Sa_fault.collapsed_faults circuit in
  Format.printf "collapsed checkpoint faults: %d@.@." (List.length faults);

  (* PODEM pass. *)
  let t0 = Unix.gettimeofday () in
  let run = Podem.run_all circuit faults in
  let podem_time = Unix.gettimeofday () -. t0 in
  Format.printf "PODEM: %d explicit tests, %d redundant, %d aborted, \
                 coverage %.3f (%.2fs)@."
    (List.length run.Podem.tests)
    (List.length run.Podem.redundant)
    (List.length run.Podem.aborted)
    run.Podem.coverage podem_time;

  (* DP pass. *)
  let t0 = Unix.gettimeofday () in
  let engine = Engine.create circuit in
  let results =
    Engine.analyze_exact engine (List.map (fun f -> Fault.Stuck f) faults)
  in
  let dp_time = Unix.gettimeofday () -. t0 in
  let undetectable =
    List.filter (fun r -> not r.Engine.detectable) results
  in
  Format.printf "DP: exact detectabilities for all faults, %d undetectable \
                 (%.2fs)@.@."
    (List.length undetectable) dp_time;

  (* Agreement check: PODEM redundant <=> DP empty test set. *)
  let dp_undetectable =
    List.filter_map
      (fun r ->
        match r.Engine.fault with
        | Fault.Stuck f when not r.Engine.detectable -> Some f
        | Fault.Stuck _ | Fault.Bridged _ | Fault.Multi_stuck _ -> None)
      results
  in
  let agree =
    List.length run.Podem.aborted = 0
    && List.sort Sa_fault.compare dp_undetectable
       = List.sort Sa_fault.compare run.Podem.redundant
  in
  Format.printf "redundancy agreement (PODEM proof vs DP empty set): %s@.@."
    (if agree then "EXACT MATCH" else "MISMATCH");

  (* What complete test sets buy: rank PODEM's vectors by how many other
     faults each detects (fault simulation), then show how DP's
     detectability spectrum explains which faults forced dedicated
     vectors. *)
  let hard =
    results
    |> List.filter (fun r -> r.Engine.detectable)
    |> List.sort (fun a b ->
           Float.compare a.Engine.detectability b.Engine.detectability)
    |> List.filteri (fun i _ -> i < 5)
  in
  Format.printf "hardest detectable faults (smallest complete test sets):@.";
  List.iter
    (fun r ->
      Format.printf "  %-28s detectability %.6f (%g vectors)@."
        (Fault.to_string circuit r.Engine.fault)
        r.Engine.detectability r.Engine.test_count)
    hard;

  (* Every hard fault's DP vector must detect it. *)
  List.iter
    (fun r ->
      match Engine.test_vector engine r.Engine.fault with
      | Some v -> assert (Fault_sim.detects circuit r.Engine.fault v)
      | None -> assert false)
    hard;
  Format.printf "@.DP vectors for the hard faults verified by simulation.@."
