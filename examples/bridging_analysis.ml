(* Bridging-fault study on one circuit, reproducing the paper's §4.2
   workflow end to end: enumerate / sample non-feedback bridging faults
   with the layout-distance law, compute exact detectabilities for the
   wired-AND and wired-OR models, classify the bridges that degenerate
   to stuck-at behaviour, and compare against the stuck-at profile.

     dune exec examples/bridging_analysis.exe [circuit] [sample-size] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c95" in
  let sample =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 150
  in
  let circuit = Bench_suite.find name in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;

  (* Fault universe: full enumeration when feasible, distance-weighted
     sampling otherwise (paper §2.2). *)
  let bridges, provenance =
    if Circuit.num_gates circuit <= 100 then
      (Bridge.enumerate circuit, "full enumeration")
    else begin
      let faults, stats = Bridge.sample ~seed:42 ~size:sample circuit in
      ( faults,
        Printf.sprintf
          "distance-weighted sample (%d pairs from %d proposals, max wire \
           distance %.1f)"
          stats.Bridge.accepted stats.Bridge.proposals
          stats.Bridge.max_distance )
    end
  in
  Format.printf "NFBF set: %d faults (%s)@.@." (List.length bridges) provenance;

  let engine = Engine.create circuit in
  let results =
    Engine.analyze_exact engine (List.map (fun b -> Fault.Bridged b) bridges)
  in

  (* Detectability histograms per wired model (Figure 6's content). *)
  let split kind =
    List.filter
      (fun r ->
        match r.Engine.fault with
        | Fault.Bridged b -> b.Bridge.kind = kind
        | Fault.Stuck _ | Fault.Multi_stuck _ -> false)
      results
  in
  let detectabilities rs =
    rs
    |> List.filter (fun r -> r.Engine.detectable)
    |> List.map (fun r -> r.Engine.detectability)
  in
  let h kind = Histogram.make ~bins:10 (detectabilities (split kind)) in
  Format.printf "detection probability profiles:@.";
  Histogram.pp_pair ~labels:("AND-BF", "OR-BF") Format.std_formatter
    (h Bridge.Wired_and, h Bridge.Wired_or);

  (* Stuck-at-degenerate bridges (Figure 5's content). *)
  Format.printf "@.bridges with stuck-at behaviour (constant wired function):@.";
  List.iter
    (fun s ->
      Format.printf "  %s: %d / %d (%.3f)@."
        (match s.Bridge_class.kind with
        | Bridge.Wired_and -> "wired-AND"
        | Bridge.Wired_or -> "wired-OR")
        s.Bridge_class.stuck_like s.Bridge_class.total
        s.Bridge_class.proportion)
    (Bridge_class.classify engine bridges);

  (* Comparison with the stuck-at fault model on the same circuit. *)
  let sa_results =
    Engine.analyze_exact engine
      (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults circuit))
  in
  let mean rs =
    let ds = detectabilities rs in
    if ds = [] then 0.0
    else List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
  in
  Format.printf "@.mean detectability: bridging %.4f vs stuck-at %.4f@."
    (mean results) (mean sa_results);
  Format.printf
    "undetectable: bridging %d / %d, stuck-at %d / %d@."
    (List.length (List.filter (fun r -> not r.Engine.detectable) results))
    (List.length results)
    (List.length (List.filter (fun r -> not r.Engine.detectable) sa_results))
    (List.length sa_results);

  (* The paper's takeaway: logic dominance barely matters. *)
  Format.printf
    "@.AND vs OR means: %.4f vs %.4f — the wired dominance value has \
     little effect (paper §4.2).@."
    (mean (split Bridge.Wired_and))
    (mean (split Bridge.Wired_or))
