(* Random-pattern testing predicted from exact detectabilities.

   With the exact detectability d_i of every fault, the expected fault
   coverage after N uniform random patterns is known in closed form:

     E[coverage(N)] = 1 - mean_i (1 - d_i)^N

   and a target escape rate dictates the test length per fault:
   N_i >= ln(escape) / ln(1 - d_i).  This example computes the exact
   profile for a circuit by Difference Propagation, predicts the random
   coverage curve, and overlays the prediction on an actual simulated
   random-pattern campaign — the kind of "implication to test" the paper
   derives from complete test sets ([19]'s estimates, made exact).

     dune exec examples/random_testing.exe [circuit] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432" in
  let circuit = Bench_suite.find name in
  Format.printf "circuit: %a@.@." Circuit.pp_summary circuit;
  let engine = Engine.create circuit in
  let faults =
    List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults circuit)
  in
  let results = Engine.analyze_exact engine faults in
  let detectable = List.filter (fun r -> r.Engine.detectable) results in
  let ds = List.map (fun r -> r.Engine.detectability) detectable in
  Format.printf "%d detectable faults, detectability %.2e .. %.2e@."
    (List.length ds)
    (List.fold_left Float.min 1.0 ds)
    (List.fold_left Float.max 0.0 ds);

  (* Predicted coverage curve. *)
  let predicted n =
    let survive =
      List.fold_left
        (fun acc d -> acc +. ((1.0 -. d) ** float_of_int n))
        0.0 ds
    in
    1.0 -. (survive /. float_of_int (List.length ds))
  in

  (* Simulated campaign (detectable faults only, fault dropping). *)
  let detectable_faults = List.map (fun r -> r.Engine.fault) detectable in
  let points =
    Fault_sim.random_coverage ~seed:7 ~patterns:4096 circuit detectable_faults
  in
  Format.printf "@.  %-9s %12s %12s@." "patterns" "predicted" "simulated";
  List.iter
    (fun (p : Fault_sim.coverage_point) ->
      let n = p.Fault_sim.patterns_applied in
      if List.mem n [ 64; 128; 256; 512; 1024; 2048; 4096 ] then
        Format.printf "  %-9d %12.4f %12.4f@." n (predicted n)
          p.Fault_sim.coverage)
    points;

  (* Test length for a 0.1% escape target, dictated by the hardest
     fault — exactly computable, no heuristics. *)
  let escape = 0.001 in
  let hardest = List.fold_left Float.min 1.0 ds in
  let n_needed =
    int_of_float (Float.ceil (Float.log escape /. Float.log (1.0 -. hardest)))
  in
  Format.printf
    "@.hardest fault has detectability %.2e; %d random patterns are needed \
     for a %.1f%% escape probability on it@."
    hardest n_needed (escape *. 100.0);
  Format.printf
    "(deterministic testing needs exactly one vector for it — DP already \
     has the complete set)@."
