(* Regenerates every table and figure of Butler & Mercer (DAC 1990) and
   runs the ablation / micro benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig2 fig5  # selected artifacts
     dune exec bench/main.exe -- -sample 300 all

   The printed series are what EXPERIMENTS.md records; absolute numbers
   differ from the paper (our large circuits are documented substitutes,
   DESIGN.md §4) but each figure's qualitative shape is asserted in the
   accompanying commentary. *)

let fmt = Format.std_formatter

let section id title =
  Format.fprintf fmt "@.==== %s : %s ====@." id title

let note text = Format.fprintf fmt "-- %s@." text

let config = ref Experiments.default

let elapsed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)

let table1 () =
  section "table1" "output difference functions (Table 1)";
  List.iter (fun row -> Format.fprintf fmt "  %s@." row) Rules.table_text;
  let ok = Experiments.table1_verification ~trials:200 ~vars:8 in
  note
    (Printf.sprintf
       "verified against direct faulty evaluation on 200 random cases: %s"
       (if ok then "PASS" else "FAIL"))

let fig1 () =
  section "fig1" "stuck-at detection probability histograms (c95, alu74181)";
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "  %s:@." name;
      Histogram.pp fmt h)
    (Experiments.fig1 ~config:!config ());
  note "expected shape: mass concentrated in the low-probability bins"

let fig2 () =
  section "fig2" "mean stuck-at detectability vs netlist size";
  let rows = Experiments.fig2 ~config:!config () in
  Trends.pp fmt rows;
  note
    (Printf.sprintf
       "PO-normalised mean decreases with size: strictly monotone %s, \
        Spearman rank correlation %.3f (paper's trend needs it strongly \
        negative)"
       (if Trends.decreasing_normalized rows then "HOLDS" else "NO")
       (Trends.spearman_size_normalized rows));
  let find name = List.find (fun r -> r.Trends.title = name) rows in
  let c499 = find "c499" and c1355 = find "c1355" in
  note
    (Printf.sprintf
       "c1355 (expanded c499) is less testable than c499: %s (%.6f < %.6f)"
       (if c1355.Trends.normalized < c499.Trends.normalized then "HOLDS"
        else "VIOLATED")
       c1355.Trends.normalized c499.Trends.normalized)

let bathtub_commentary points =
  match points with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    let interior =
      List.filteri (fun i _ -> i > 0 && i < List.length points - 1) points
    in
    let min_interior =
      List.fold_left (fun acc p -> Float.min acc p.Bathtub.mean) infinity
        interior
    in
    note
      (Printf.sprintf
         "bathtub shape (ends above the interior minimum): %s (%.4f / %.4f \
          vs interior min %.4f)"
         (if
            first.Bathtub.mean > min_interior
            && last.Bathtub.mean >= min_interior
          then "HOLDS"
          else "VIOLATED")
         first.Bathtub.mean last.Bathtub.mean min_interior)
  | _ -> note "too few distance groups for shape commentary"

let fig3 () =
  section "fig3" "mean stuck-at detectability vs max levels to PO (c1355)";
  let points = Experiments.fig3 ~config:!config () in
  Bathtub.pp fmt points;
  bathtub_commentary points;
  let pi_points = Experiments.fig3_pi ~config:!config () in
  Format.fprintf fmt "  companion series by PI level:@.";
  Bathtub.pp fmt pi_points;
  (* The paper's wording is that PI-distance plots look "much more
     random"; jaggedness of the curve (mean absolute step between
     adjacent group means, scaled by the overall mean) measures that. *)
  let roughness pts =
    let means = List.map (fun p -> p.Bathtub.mean) pts in
    let rec steps = function
      | a :: (b :: _ as rest) -> Float.abs (b -. a) :: steps rest
      | [ _ ] | [] -> []
    in
    let diffs = steps means in
    let overall = Histogram.mean means in
    if diffs = [] || overall <= 0.0 then 0.0
    else Histogram.mean diffs /. overall
  in
  note
    (Printf.sprintf
       "curve roughness: PO distance %.3f vs PI level %.3f (paper: the PI \
        plots look more random); |corr| PO %.3f vs PI %.3f"
       (roughness points) (roughness pi_points)
       (Float.abs (Bathtub.correlation points))
       (Float.abs (Bathtub.correlation pi_points)))

let fig4 () =
  section "fig4" "stuck-at adherence histogram (alu74181)";
  let h = Experiments.fig4 ~config:!config () in
  Histogram.pp fmt h;
  let spike = h.Histogram.proportions.(h.Histogram.bins - 1) in
  let neighbour = h.Histogram.proportions.(h.Histogram.bins - 2) in
  note
    (Printf.sprintf
       "rise at adherence 1.0: last bin %.3f vs its neighbour %.3f — %s \
        (paper: low values elsewhere, sharp rise at one)"
       spike neighbour
       (if spike > neighbour then "HOLDS" else "VIOLATED"))

let fig5 () =
  section "fig5" "proportion of NFBFs with stuck-at behaviour";
  Format.fprintf fmt "  %-12s %-20s %-20s@." "circuit" "AND (stuck/total)"
    "OR (stuck/total)";
  let data = Experiments.fig5 ~config:!config () in
  List.iter
    (fun (name, summaries) ->
      let cell kind =
        match
          List.find_opt (fun s -> s.Bridge_class.kind = kind) summaries
        with
        | Some s ->
          Printf.sprintf "%.3f (%d/%d)" s.Bridge_class.proportion
            s.Bridge_class.stuck_like s.Bridge_class.total
        | None -> "-"
      in
      Format.fprintf fmt "  %-12s %-20s %-20s@." name
        (cell Bridge.Wired_and) (cell Bridge.Wired_or))
    data;
  note "expected: proportions generally low (agrees with IFA, paper §4.2)";
  let anti =
    List.for_all
      (fun (_, summaries) ->
        let prop kind =
          match
            List.find_opt (fun s -> s.Bridge_class.kind = kind) summaries
          with
          | Some s -> s.Bridge_class.proportion
          | None -> 0.0
        in
        Float.min (prop Bridge.Wired_and) (prop Bridge.Wired_or) < 0.15)
      data
  in
  note
    (Printf.sprintf
       "AND-heavy circuits are OR-light and vice versa (paper): %s (the \
        smaller of each pair stays below 0.15)"
       (if anti then "HOLDS" else "VIOLATED"))

let fig6 () =
  section "fig6" "bridging detection probability histograms (c95)";
  let and_h, or_h = Experiments.fig6 ~config:!config () in
  Histogram.pp_pair ~labels:("AND-BF", "OR-BF") fmt (and_h, or_h);
  note "expected: AND and OR profiles nearly identical (paper §4.2)"

let fig7 () =
  section "fig7" "mean bridging detectability vs netlist size";
  let rows = Experiments.fig7 ~config:!config () in
  Trends.pp fmt rows;
  let sa_rows = Experiments.fig2 ~config:!config () in
  let higher =
    List.fold_left2
      (fun acc (bf : Trends.row) (sa : Trends.row) ->
        if bf.Trends.mean_detectability >= sa.Trends.mean_detectability then
          acc + 1
        else acc)
      0 rows sa_rows
  in
  note
    (Printf.sprintf
       "bridging means slightly above stuck-at means (paper §4.2): %d of %d \
        circuits"
       higher (List.length rows));
  note
    (Printf.sprintf
       "normalised trend still decreasing: Spearman rank correlation %.3f"
       (Trends.spearman_size_normalized rows))

let fig8 () =
  section "fig8" "mean bridging detectability vs max levels to PO (c1355)";
  let and_pts, or_pts = Experiments.fig8 ~config:!config () in
  Format.fprintf fmt "  AND bridges:@.";
  Bathtub.pp fmt and_pts;
  Format.fprintf fmt "  OR bridges:@.";
  Bathtub.pp fmt or_pts;
  note "expected: same bathtub tendency as Figure 3, AND ~ OR"

let obs_po () =
  section "obs-po" "POs fed vs POs observable (justify-to-closest-PO)";
  List.iter
    (fun (name, s) ->
      Format.fprintf fmt "  %-12s" name;
      Po_stats.pp fmt s)
    (Experiments.po_observability ~config:!config ());
  note "paper: 'these numbers are almost always the same'"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation_order () =
  section "ablation-order"
    "BDD nodes and build time per variable-ordering heuristic";
  Format.fprintf fmt "  %-12s %-12s %12s %10s@." "circuit" "heuristic"
    "nodes" "seconds";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      List.iter
        (fun h ->
          let sym, dt = elapsed (fun () -> Symbolic.build ~heuristic:h c) in
          Format.fprintf fmt "  %-12s %-12s %12d %10.3f@." name
            (Ordering.name h) (Symbolic.total_nodes sym) dt)
        Ordering.all)
    [ "alu74181"; "c432"; "c499"; "c1355"; "c1908" ];
  note "natural order exploits the benchmark input ordering (paper §2.2)";
  (* How far is natural from a locally optimal order?  Adjacent-swap
     hill climbing on the two mid-size circuits. *)
  Format.fprintf fmt "  hill-climbed orders (adjacent swaps, from natural):@.";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let r, dt = elapsed (fun () -> Order_search.hill_climb c) in
      Format.fprintf fmt
        "  %-12s %d -> %d nodes (%d passes, %.1fs)@." name
        r.Order_search.start_nodes r.Order_search.nodes
        r.Order_search.passes dt)
    [ "alu74181"; "c432" ];
  (* Seeding the climb from the topology oracle's synthesized order: a
     structurally better start should converge in fewer passes. *)
  Format.fprintf fmt "  hill climbing seeded by the topology oracle:@.";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let from h =
        let r, dt = elapsed (fun () -> Order_search.hill_climb ~start:h c) in
        Printf.sprintf "%s %d -> %d nodes, %d pass(es), %.1fs"
          (Ordering.name h) r.Order_search.start_nodes r.Order_search.nodes
          r.Order_search.passes dt
      in
      Format.fprintf fmt "  %-12s %s;  %s@." name (from Ordering.Natural)
        (from Ordering.Oracle))
    [ "c432"; "c499" ]

let ablation_decomp () =
  section "ablation-decomp"
    "monolithic engine vs per-PO cone decomposition (exact in both)";
  Format.fprintf fmt "  %-12s %8s %12s %12s %8s@." "circuit" "faults"
    "engine(s)" "decomp(s)" "agree";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let faults =
        List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
        |> List.filteri (fun i _ -> i mod 7 = 0)
      in
      let engine = Engine.create c in
      let engine_results, engine_t =
        elapsed (fun () ->
            List.map
              (fun f -> (Engine.analyze engine f).Engine.detectability)
              faults)
      in
      let decomposed = Decompose.create c in
      let decomp_results, decomp_t =
        elapsed (fun () ->
            List.map (fun f -> Decompose.detectability decomposed f) faults)
      in
      let agree =
        List.for_all2
          (fun a b -> Float.abs (a -. b) < 1e-12)
          engine_results decomp_results
      in
      Format.fprintf fmt "  %-12s %8d %12.2f %12.2f %8s@." name
        (List.length faults) engine_t decomp_t
        (if agree then "yes" else "NO"))
    [ "c432"; "c499"; "c1355" ];
  note
    "the paper used (lossy) functional decomposition for c499 and larger; \
     this variant is exact and the table records its cost/benefit"

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's artifacts                             *)

let scoap () =
  section "scoap"
    "exact detectability vs SCOAP estimates (observability claim, §4.1)";
  Format.fprintf fmt "  %-12s %10s %10s %12s@." "circuit" "|rho(CO)|"
    "|rho(CC)|" "|rho(CO+CC)|";
  let verdicts =
    List.map
      (fun name ->
        let cr = Experiments.run ~config:!config name in
        let measures = Scoap.compute cr.Experiments.circuit in
        let pairs value_of =
          cr.Experiments.sa_results
          |> List.filter (fun r -> r.Engine.detectable)
          |> List.filter_map (fun r ->
                 match r.Engine.fault with
                 | Fault.Stuck f ->
                   let stem = Sa_fault.stem_of_line f.Sa_fault.line in
                   let v = value_of measures stem f.Sa_fault.value in
                   if v = max_int then None
                   else Some (float_of_int v, r.Engine.detectability)
                 | Fault.Bridged _ | Fault.Multi_stuck _ -> None)
        in
        let rho value_of = Float.abs (Correlation.spearman (pairs value_of)) in
        let co m stem _ = Scoap.observability m stem in
        let cc m stem value =
          Scoap.controllability m ~net:stem ~value:(not value)
        in
        let both m stem value = Scoap.stuck_at_difficulty m ~stem ~value in
        let rho_co = rho co and rho_cc = rho cc and rho_both = rho both in
        Format.fprintf fmt "  %-12s %10.3f %10.3f %12.3f@." name rho_co
          rho_cc rho_both;
        rho_co >= rho_cc)
      [ "c95"; "alu74181"; "c432"; "c499"; "c1355" ]
  in
  note
    (Printf.sprintf
       "detectability more correlated with observability than \
        controllability (paper §4.1): %d of %d circuits"
       (List.length (List.filter Fun.id verdicts))
       (List.length verdicts))

let approx_vs_exact () =
  section "approx-vs-exact"
    "topological signal probabilities vs exact OBDD syndromes";
  Format.fprintf fmt "  %-12s %6s %12s %12s %14s@." "circuit" "nets"
    "mean |err|" "max |err|" "exact on trees";
  List.iter
    (fun name ->
      let cr = Experiments.run ~config:!config name in
      let sym = Engine.symbolic cr.Experiments.engine in
      let s = Signal_prob.compare_with_exact cr.Experiments.circuit sym in
      Format.fprintf fmt "  %-12s %6d %12.4f %12.4f %14s@." name
        s.Signal_prob.nets s.Signal_prob.mean_abs_error
        s.Signal_prob.max_abs_error
        (if s.Signal_prob.exact_on_trees then "yes" else "NO"))
    Bench_suite.names;
  note
    "reconvergent fanout breaks the independence assumption — the exact \
     functional analysis is what the paper is arguing for"

let collapse () =
  section "collapse" "structural vs functional fault collapsing";
  List.iter
    (fun name ->
      let cr = Experiments.run ~config:!config name in
      Format.fprintf fmt "  %-12s" name;
      Fun_collapse.pp_summary fmt
        (Fun_collapse.summarize cr.Experiments.engine cr.Experiments.circuit))
    [ "c17"; "fulladder"; "c95"; "alu74181"; "c432"; "c499" ];
  note
    "functional classes <= structural classes: equivalence the local rules \
     cannot see (McCluskey-Clegg [7] is sound but incomplete)"

let compaction () =
  section "compaction" "test-set compaction from complete test sets";
  Format.fprintf fmt "  %-12s %8s %12s %12s %8s@." "circuit" "faults"
    "PODEM tests" "DP-greedy" "verified";
  List.iter
    (fun name ->
      let cr = Experiments.run ~config:!config name in
      let c = cr.Experiments.circuit in
      let sa_faults = Sa_fault.collapsed_faults c in
      let podem = Podem.run_all c sa_faults in
      let outcome =
        Compact.greedy cr.Experiments.engine
          (List.map (fun f -> Fault.Stuck f) sa_faults)
      in
      let verified =
        Compact.verify c
          (List.map (fun f -> Fault.Stuck f) sa_faults)
          outcome.Compact.vectors
      in
      Format.fprintf fmt "  %-12s %8d %12d %12d %8s@." name
        (List.length sa_faults)
        (List.length podem.Podem.tests)
        (List.length outcome.Compact.vectors)
        (if verified then "yes" else "NO"))
    [ "c17"; "fulladder"; "c95"; "alu74181"; "c432" ];
  note
    "complete test sets turn compaction into set covering; the greedy \
     cover usually needs fewer vectors than PODEM-with-dropping (the \
     hardest-first heuristic can lose on wide circuits like c432)"

let multi () =
  section "multi"
    "double stuck-at faults: DP exactness and single-SA test-set coverage";
  Format.fprintf fmt "  %-12s %8s %12s %14s %12s@." "circuit" "pairs"
    "mean det" "undetectable" "SA-covered";
  List.iter
    (fun name ->
      let cr = Experiments.run ~config:!config name in
      let c = cr.Experiments.circuit in
      let rng = Prng.create ~seed:(!config).Experiments.seed in
      let n = Circuit.num_gates c in
      let pairs =
        List.init 200 (fun _ ->
            let rec draw () =
              let a = Prng.int rng n and b = Prng.int rng n in
              if a = b then draw ()
              else Fault.multi [ (a, Prng.bool rng); (b, Prng.bool rng) ]
            in
            draw ())
      in
      let results = Engine.analyze_exact cr.Experiments.engine pairs in
      let detectable = List.filter (fun r -> r.Engine.detectable) results in
      let mean =
        Histogram.mean
          (List.map (fun r -> r.Engine.detectability) detectable)
      in
      (* Coverage of the doubles by a complete single-SA test set. *)
      let podem = Podem.run_all c (Sa_fault.collapsed_faults c) in
      let vectors = List.map snd podem.Podem.tests in
      let covered =
        List.length
          (List.filter
             (fun r ->
               List.exists
                 (fun v -> Fault_sim.detects c r.Engine.fault v)
                 vectors)
             detectable)
      in
      Format.fprintf fmt "  %-12s %8d %12.4f %14d %9d/%d@." name
        (List.length pairs) mean
        (List.length results - List.length detectable)
        covered (List.length detectable))
    [ "c95"; "alu74181"; "c432" ];
  note
    "the Table-1 rules are exact under simultaneous differences, so \
     multiple faults need no new machinery (paper §3); coverage of \
     doubles by single-SA tests echoes Hughes-McCluskey [2]"

let catapult () =
  section "catapult"
    "Difference Propagation vs Boolean-difference (CATAPULT-style)";
  Format.fprintf fmt "  %-12s %8s %12s %14s %8s@." "circuit" "faults"
    "DP (s)" "Bool-diff (s)" "agree";
  List.iter
    (fun name ->
      let cr = Experiments.run ~config:!config name in
      let faults =
        Sa_fault.collapsed_faults cr.Experiments.circuit
        |> List.filteri (fun i _ -> i mod 4 = 0)
      in
      let engine = cr.Experiments.engine in
      let dp, dp_t =
        elapsed (fun () ->
            List.map
              (fun f ->
                (Engine.analyze engine (Fault.Stuck f)).Engine.detectability)
              faults)
      in
      let cat, cat_t =
        elapsed (fun () ->
            List.map (fun f -> Catapult.detectability engine f) faults)
      in
      let agree =
        List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) dp cat
      in
      Format.fprintf fmt "  %-12s %8d %12.2f %14.2f %8s@." name
        (List.length faults) dp_t cat_t
        (if agree then "yes" else "NO"))
    [ "c95"; "alu74181"; "c432"; "c499" ];
  note
    "the paper built DP as the alternative to CATAPULT [13]: identical \
     exact results without deriving observability disjointly from control \
     (no explicit Boolean difference)"

let dft () =
  section "dft" "exact greedy test-point planning (testable design)";
  Format.fprintf fmt "  %-12s %12s %-40s@." "circuit" "objective"
    "steps (net, kind, objective after)";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let plan = Dft.greedy ~budget:3 ~candidate_limit:6 c in
      let step_text s =
        Printf.sprintf "%s:%s->%.4f" s.Dft.net_name
          (match s.Dft.kind with `Observe -> "obs" | `Control0 -> "ctl")
          s.Dft.mean_after
      in
      Format.fprintf fmt "  %-12s %12.4f %-40s@." name plan.Dft.mean_before
        (String.concat "  " (List.map step_text plan.Dft.steps)))
    [ "c17"; "c95"; "alu74181" ];
  note
    "each step is chosen by exact mean-detectability gain over the whole \
     fault set — the paper's DFT question (control vs observation points) \
     answered per circuit, not by heuristic"

let transition () =
  section "transition"
    "gross-delay (transition) faults from complete stuck-at test sets";
  Format.fprintf fmt "  %-12s %8s %12s %12s %14s@." "circuit" "faults"
    "mean (rise)" "mean (fall)" "undetectable";
  List.iter
    (fun name ->
      let cr = Experiments.run ~config:!config name in
      let engine = cr.Experiments.engine in
      let c = cr.Experiments.circuit in
      let faults = Transition.all c in
      let dets =
        List.map (fun f -> (f, Transition.pair_detectability engine f)) faults
      in
      let mean edge =
        Histogram.mean
          (List.filter_map
             (fun ((f : Transition.t), d) ->
               if f.Transition.edge = edge && d > 0.0 then Some d else None)
             dets)
      in
      let undetectable =
        List.length (List.filter (fun (_, d) -> d = 0.0) dets)
      in
      Format.fprintf fmt "  %-12s %8d %12.4f %12.4f %14d@." name
        (List.length faults) (mean Transition.Rise) (mean Transition.Fall)
        undetectable)
    [ "c17"; "c95"; "alu74181"; "c432" ];
  note
    "pair detectability = launch probability x stuck-at detectability — \
     exact over the 2^(2n) pair space, from data DP already computed \
     (the paper's 'more logical fault models', §1/§5)"

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (Bechamel)                                         *)

let run_bechamel name tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun key v acc -> (key, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (key, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
        Format.fprintf fmt "  %-44s %14.0f ns/run@." key est
      | Some [] | None -> Format.fprintf fmt "  %-44s %14s@." key "n/a")
    rows

let micro () =
  section "micro" "Bechamel micro-benchmarks";
  let open Bechamel in
  let bdd_tests =
    let m = Bdd.create 24 in
    let rng = Prng.create ~seed:5 in
    let f =
      Bdd.bxor_list m (List.init 24 (Bdd.var m))
    in
    let g =
      List.init 12 (fun i -> Bdd.band m (Bdd.var m i) (Bdd.var m (i + 12)))
      |> Bdd.bor_list m
    in
    [
      Test.make ~name:"bdd-and" (Staged.stage (fun () -> Bdd.band m f g));
      Test.make ~name:"bdd-xor" (Staged.stage (fun () -> Bdd.bxor m f g));
      Test.make ~name:"bdd-satfrac" (Staged.stage (fun () -> Bdd.sat_fraction m g));
      Test.make ~name:"bdd-random-mix"
        (Staged.stage (fun () ->
             let a = Bdd.var m (Prng.int rng 24) in
             Bdd.bxor m g (Bdd.band m f a)));
    ]
  in
  Format.fprintf fmt "  [bdd core operations]@.";
  run_bechamel "bdd" bdd_tests;
  (* Per-fault analysis cost: DP vs exhaustive simulation vs PODEM on a
     circuit small enough for exhaustion. *)
  let alu = Bench_suite.find "alu74181" in
  let engine = Engine.create alu in
  let fault =
    Fault.Stuck (List.nth (Sa_fault.collapsed_faults alu) 5)
  in
  let sa_fault =
    match fault with
    | Fault.Stuck f -> f
    | Fault.Bridged _ | Fault.Multi_stuck _ -> assert false
  in
  let per_fault =
    [
      Test.make ~name:"dp-analyze-alu74181"
        (Staged.stage (fun () -> Engine.analyze engine fault));
      Test.make ~name:"exhaustive-sim-alu74181"
        (Staged.stage (fun () -> Fault_sim.exhaustive_count alu fault));
      Test.make ~name:"podem-alu74181"
        (Staged.stage (fun () -> Podem.generate alu sa_fault));
    ]
  in
  Format.fprintf fmt "  [per-fault cost, 14-input ALU: exact DP vs 2^14 \
                      simulation vs single-test PODEM]@.";
  run_bechamel "fault" per_fault;
  let c432 = Bench_suite.find "c432" in
  let engine432 = Engine.create c432 in
  let fault432 =
    Fault.Stuck (List.nth (Sa_fault.collapsed_faults c432) 40)
  in
  let large =
    [
      Test.make ~name:"dp-analyze-c432"
        (Staged.stage (fun () -> Engine.analyze engine432 fault432));
      Test.make ~name:"engine-build-c95"
        (Staged.stage (fun () -> Engine.create (Bench_suite.find "c95")));
    ]
  in
  Format.fprintf fmt "  [36-input circuit: DP keeps running where \
                      exhaustion (2^36) cannot]@.";
  run_bechamel "large" large;
  note "DP's advantage grows exponentially with input count (paper §1, §3)"

(* ------------------------------------------------------------------ *)
(* Parallel-throughput regression harness.  One [perf] invocation
   produces three artifacts: BENCH_dp.json (the full latest-run matrix,
   rewritten after every circuit), BENCH_history.csv (one appended row
   per configuration per run — the cross-run memory that the regression
   gate reads), and, via the [trend] command, bench_trend.html — a
   self-contained page of per-configuration sparklines over history.   *)

let perf_domain_counts = ref [ 1; 2; 4; 8 ]
let perf_circuits = ref Bench_suite.names
let perf_out = ref "BENCH_dp.json"
let perf_history = ref "BENCH_history.csv"
let perf_trend_out = ref "bench_trend.html"
let perf_gate = ref false
let perf_schedulers = ref [ Engine.Snapshot ]

let scheduler_of_string = function
  | "static" -> Engine.Static
  | "stealing" -> Engine.Stealing
  | "snapshot" -> Engine.Snapshot
  | s ->
    Format.eprintf "perf: unknown scheduler %S (static|stealing|snapshot)@."
      s;
    exit 2

type perf_run = {
  scheduler : Engine.scheduler;
  domains : int;
  seconds : float;
  faults_per_sec : float;
  matches_sequential : bool;
  degraded : int;
  stats : Engine.sweep_stats;
}

let write_perf_json path rows =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\n  \"hardware_domains\": %d,\n"
    (Parallel.available_domains ());
  Printf.bprintf buf "  \"bridge_sample\": %d,\n"
    (!config).Experiments.bridge_sample;
  Buffer.add_string buf "  \"circuits\": [\n";
  List.iteri
    (fun i (name, faults, runs) ->
      Printf.bprintf buf "    { \"name\": %S, \"faults\": %d, \"runs\": [" name
        faults;
      List.iteri
        (fun j r ->
          Printf.bprintf buf
            "%s\n      { \"scheduler\": %S, \"domains\": %d, \
             \"seconds\": %.6f, \"faults_per_sec\": %.3f, \
             \"matches_sequential\": %b, \"degraded\": %d, \
             \"build_seconds\": %.6f, \"snapshot_seconds\": %.6f, \
             \"analysis_wall_seconds\": %.6f, \
             \"analysis_cpu_seconds\": %.6f, \
             \"gc_seconds\": %.6f, \"gc_collections\": %d, \
             \"batches\": %d, \"good_functions_built\": %d, \
             \"scratch_peak_nodes\": %d, \"apply_steps\": %d, \
             \"nodes_allocated\": %d, \"rescued_faults\": %d, \
             \"sift_seconds\": %.6f, \"hardware_domains\": %d }"
            (if j = 0 then "" else ",")
            (Engine.scheduler_to_string r.scheduler)
            r.domains r.seconds r.faults_per_sec r.matches_sequential
            r.degraded r.stats.Engine.build_seconds
            r.stats.Engine.snapshot_seconds
            r.stats.Engine.analysis_wall_seconds
            r.stats.Engine.analysis_cpu_seconds r.stats.Engine.gc_seconds
            r.stats.Engine.gc_collections r.stats.Engine.batch_count
            r.stats.Engine.good_functions_built
            r.stats.Engine.scratch_peak_nodes r.stats.Engine.apply_steps
            r.stats.Engine.nodes_allocated r.stats.Engine.rescued_faults
            r.stats.Engine.sift_seconds r.stats.Engine.hardware_domains)
        runs;
      Printf.bprintf buf "\n    ] }%s\n"
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Bench history: one CSV row per configuration per [perf] run.  The
   file is append-only, so successive runs (and CI jobs restoring it
   from an artifact cache) accumulate the trajectory the cross-run
   regression gate and the trend page both read.                       *)

let history_columns =
  [
    "ts"; "circuit"; "faults"; "scheduler"; "domains"; "seconds";
    "faults_per_sec"; "matches_sequential"; "degraded"; "build_seconds";
    "snapshot_seconds"; "analysis_wall_seconds"; "analysis_cpu_seconds";
    "gc_seconds"; "gc_collections"; "batches"; "good_functions_built";
    "scratch_peak_nodes"; "apply_steps"; "nodes_allocated";
    "hardware_domains";
  ]

(* [?scheduler_name] overrides the scheduler cell: the hostile stress
   lane records its rows under the pseudo-scheduler "hostile" so its
   degraded-count baseline can never be confused with a perf series. *)
let history_row ?scheduler_name ts name faults r =
  Printf.sprintf
    "%.0f,%s,%d,%s,%d,%.6f,%.3f,%b,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%d,%d,%d,%d,%d"
    ts name faults
    (Option.value scheduler_name
       ~default:(Engine.scheduler_to_string r.scheduler))
    r.domains r.seconds r.faults_per_sec r.matches_sequential r.degraded
    r.stats.Engine.build_seconds r.stats.Engine.snapshot_seconds
    r.stats.Engine.analysis_wall_seconds r.stats.Engine.analysis_cpu_seconds
    r.stats.Engine.gc_seconds r.stats.Engine.gc_collections
    r.stats.Engine.batch_count r.stats.Engine.good_functions_built
    r.stats.Engine.scratch_peak_nodes r.stats.Engine.apply_steps
    r.stats.Engine.nodes_allocated r.stats.Engine.hardware_domains

(* Append one raw pre-formatted row — for the pseudo-scheduler lanes
   (serve, topo) whose cells don't come from a sweep run record. *)
let append_history_line path row =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if fresh then output_string oc (String.concat "," history_columns ^ "\n");
  output_string oc (row ^ "\n");
  close_out oc

let append_history ?scheduler_name path ts name faults runs =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if fresh then output_string oc (String.concat "," history_columns ^ "\n");
  List.iter
    (fun r ->
      output_string oc (history_row ?scheduler_name ts name faults r ^ "\n"))
    runs;
  close_out oc

(* Parsed history rows, oldest first.  Rows with the wrong column count
   (a past or future schema) are skipped, not fatal: the history file
   outlives any one layout. *)
let read_history path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rows = ref [] in
    (try
       ignore (input_line ic);
       while true do
         let cells =
           String.split_on_char ',' (input_line ic) |> Array.of_list
         in
         if Array.length cells = List.length history_columns then
           rows := cells :: !rows
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

(* A value series as an inline SVG polyline — no external assets, so the
   trend page is a single self-contained file CI can publish as-is. *)
let sparkline values =
  let w = 220 and h = 40 in
  match values with
  | [] | [ _ ] ->
    Printf.sprintf
      "<svg width=\"%d\" height=\"%d\"><text x=\"4\" y=\"%d\" \
       font-size=\"11\" fill=\"#888\">not enough runs</text></svg>"
      w h ((h / 2) + 4)
  | vs ->
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    let span = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
    let n = List.length vs in
    let pts =
      List.mapi
        (fun i v ->
          let x =
            4.0
            +. float_of_int i /. float_of_int (n - 1) *. float_of_int (w - 8)
          in
          let y =
            4.0 +. ((1.0 -. ((v -. lo) /. span)) *. float_of_int (h - 8))
          in
          Printf.sprintf "%.1f,%.1f" x y)
        vs
    in
    Printf.sprintf
      "<svg width=\"%d\" height=\"%d\"><polyline points=\"%s\" \
       fill=\"none\" stroke=\"#2a6e4e\" stroke-width=\"1.5\"/></svg>"
      w h (String.concat " " pts)

let trend () =
  section "trend" "bench trend page (BENCH_history.csv -> bench_trend.html)";
  let rows = read_history !perf_history in
  if rows = [] then
    note
      (Printf.sprintf "%s: no history yet; run [perf] first" !perf_history)
  else begin
    (* Group rows by (circuit, scheduler, domains) preserving first-seen
       order; each group is one time series, oldest first. *)
    let keys = ref [] in
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (c : string array) ->
        let key = (c.(1), c.(3), c.(4)) in
        if not (Hashtbl.mem tbl key) then begin
          keys := key :: !keys;
          Hashtbl.add tbl key (ref [])
        end;
        let cell = Hashtbl.find tbl key in
        cell := c :: !cell)
      rows;
    let keys = List.rev !keys in
    let buf = Buffer.create 8192 in
    Buffer.add_string buf
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
       <title>bench trend</title>\n\
       <style>body{font-family:sans-serif;margin:2em}\
       table{border-collapse:collapse}\
       td,th{border:1px solid #ccc;padding:4px 10px;text-align:right}\
       th{background:#f4f4f4}td.l,th.l{text-align:left}</style>\
       </head><body>\n";
    Printf.bprintf buf
      "<h1>Fault-sweep throughput over %d recorded runs</h1>\n\
       <p>Source: <code>%s</code>.  Sparklines read left (oldest) to \
       right (newest).  <code>apply_steps</code> and \
       <code>scratch_peak_nodes</code> are the deterministic work and \
       memory metrics — machine-independent, the signals the cross-run \
       regression gate watches; <code>faults/s</code> and \
       <code>gc_seconds</code> are wall-clock numbers on whatever \
       hardware each run happened to use.</p>\n"
      (List.length rows) !perf_history;
    Buffer.add_string buf
      "<table><tr><th class=\"l\">circuit</th>\
       <th class=\"l\">scheduler</th><th>domains</th><th>runs</th>\
       <th>latest faults/s</th><th>faults/s trend</th>\
       <th>latest apply_steps</th><th>apply_steps trend</th>\
       <th>latest peak nodes</th><th>peak nodes trend</th>\
       <th>latest gc(s)</th><th>gc(s) trend</th></tr>\n";
    List.iter
      (fun ((circuit, sched, domains) as key) ->
        let series = List.rev !(Hashtbl.find tbl key) in
        let fps = List.map (fun c -> float_of_string c.(6)) series in
        let steps = List.map (fun c -> float_of_string c.(18)) series in
        let peaks = List.map (fun c -> float_of_string c.(17)) series in
        let gcs = List.map (fun c -> float_of_string c.(13)) series in
        let last l = List.nth l (List.length l - 1) in
        Printf.bprintf buf
          "<tr><td class=\"l\">%s</td><td class=\"l\">%s</td><td>%s</td>\
           <td>%d</td><td>%.1f</td><td>%s</td><td>%.0f</td><td>%s</td>\
           <td>%.0f</td><td>%s</td><td>%.3f</td><td>%s</td>\
           </tr>\n"
          circuit sched domains (List.length series) (last fps)
          (sparkline fps) (last steps) (sparkline steps) (last peaks)
          (sparkline peaks) (last gcs) (sparkline gcs))
      keys;
    Buffer.add_string buf "</table></body></html>\n";
    let oc = open_out !perf_trend_out in
    output_string oc (Buffer.contents buf);
    close_out oc;
    note
      (Printf.sprintf "%s written (%d series)" !perf_trend_out
         (List.length keys))
  end

let perf () =
  section "perf"
    "fault-sweep throughput: shared-snapshot sweeps vs the sequential \
     reference";
  let ts = Unix.time () in
  (* Prior history is read before this run appends anything: the
     cross-run gate compares against what was on disk at start. *)
  let prior = read_history !perf_history in
  let failures = ref [] in
  let fail fmt_str =
    Printf.ksprintf (fun m -> failures := m :: !failures) fmt_str
  in
  Format.fprintf fmt
    "  %-10s %7s %-9s %4s %8s %11s %7s %7s %7s %7s %5s %10s %6s@." "circuit"
    "faults" "sched" "dom" "seconds" "faults/sec" "build" "snap" "wall"
    "cpu" "gc#" "steps" "agree";
  let rows = ref [] in
  List.iter
    (fun name ->
        let c =
          try Bench_suite.find name
          with Not_found ->
            Format.eprintf "perf: unknown circuit %S (known: %s)@." name
              (String.concat ", " Bench_suite.names);
            exit 2
        in
        let faults =
          List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
          @
          let bf, _ = Experiments.bridge_faults !config c in
          List.map (fun b -> Fault.Bridged b) bf
        in
        let n = List.length faults in
        let baseline = ref [] in
        let measure scheduler d =
          (* Engine construction is inside the timed region for every
             configuration: each path pays its own symbolic builds, and
             that overhead belongs in the throughput. *)
          let (results, stats), dt =
            elapsed (fun () ->
                Engine.analyze_all_stats ~scheduler ~domains:d
                  (Engine.create c) faults)
          in
          let matches_sequential =
            if !baseline = [] then begin
              baseline := results;
              true
            end
            else results = !baseline
          in
          let degraded = List.length (Engine.degraded results) in
          let faults_per_sec = float_of_int n /. dt in
          Format.fprintf fmt
            "  %-10s %7d %-9s %4d %8.2f %11.1f %7.2f %7.2f %7.2f %7.2f \
             %5d %10d %6s@."
            name n
            (Engine.scheduler_to_string scheduler)
            d dt faults_per_sec stats.Engine.build_seconds
            stats.Engine.snapshot_seconds stats.Engine.analysis_wall_seconds
            stats.Engine.analysis_cpu_seconds stats.Engine.gc_collections
            stats.Engine.apply_steps
            (if matches_sequential then "yes" else "NO");
          {
            scheduler;
            domains = d;
            seconds = dt;
            faults_per_sec;
            matches_sequential;
            degraded;
            stats;
          }
        in
        (* The static single-domain run is the reference: every other
           configuration must reproduce its outcome list bit for bit.
           (Bound first — [::] would evaluate its right side first.) *)
        let reference = measure Engine.Static 1 in
        let runs =
          reference
          :: List.concat_map
               (fun s -> List.map (measure s) !perf_domain_counts)
               !perf_schedulers
        in
        (* Within-run gates: bit-identity everywhere, no inverted
           scaling, and one snapshot build per sweep regardless of the
           domain count. *)
        List.iter
          (fun r ->
            if not r.matches_sequential then
              fail "%s: %s@%d does not match the sequential reference" name
                (Engine.scheduler_to_string r.scheduler)
                r.domains)
          runs;
        let hw = Parallel.available_domains () in
        let snapshot_at d =
          List.find_opt
            (fun r -> r.scheduler = Engine.Snapshot && r.domains = d)
            runs
        in
        (* Scaling can only be demanded of domain counts the hardware
           can actually run in parallel; oversubscribed points are
           reported but not gated. *)
        (match List.filter (fun d -> d <= hw) !perf_domain_counts with
        | [] | [ _ ] -> ()
        | usable -> (
          let lo = List.fold_left min max_int usable in
          let hi = List.fold_left max 0 usable in
          match (snapshot_at lo, snapshot_at hi) with
          | Some a, Some b when b.faults_per_sec < 0.9 *. a.faults_per_sec
            ->
            fail
              "%s: inverted scaling — snapshot@%d %.1f faults/s < 0.9x \
               snapshot@%d %.1f faults/s"
              name hi b.faults_per_sec lo a.faults_per_sec
          | _ -> ()));
        let built_counts =
          List.filter_map
            (fun r ->
              if r.scheduler = Engine.Snapshot then
                Some r.stats.Engine.good_functions_built
              else None)
            runs
        in
        let built_uniform =
          match built_counts with
          | [] -> true
          | b :: rest -> List.for_all (( = ) b) rest
        in
        if not built_uniform then
          fail
            "%s: good_functions_built varies across snapshot domain counts"
            name;
        (* Cross-run gate on the deterministic work metric: against the
           latest prior static@1 row for the same circuit and fault
           count, the sweep must not have grown >10%% more expensive. *)
        let prior_steps =
          List.fold_left
            (fun acc (cells : string array) ->
              if
                cells.(1) = name
                && cells.(3) = "static"
                && cells.(4) = "1"
                && int_of_string cells.(2) = n
              then Some (int_of_string cells.(18))
              else acc)
            None prior
        in
        (match prior_steps with
        | Some p
          when p > 0
               && float_of_int reference.stats.Engine.apply_steps
                  > 1.10 *. float_of_int p ->
          fail
            "%s: apply_steps regression — static@1 now %d, last recorded \
             %d (>10%% more work per sweep)"
            name reference.stats.Engine.apply_steps p
        | _ -> ());
        (* Same cross-run gate on the deterministic memory metric: the
           peak scratch arena of the static@1 reference sweep. *)
        let prior_peak =
          List.fold_left
            (fun acc (cells : string array) ->
              if
                cells.(1) = name
                && cells.(3) = "static"
                && cells.(4) = "1"
                && int_of_string cells.(2) = n
              then Some (int_of_string cells.(17))
              else acc)
            None prior
        in
        (match prior_peak with
        | Some p
          when p > 0
               && float_of_int reference.stats.Engine.scratch_peak_nodes
                  > 1.10 *. float_of_int p ->
          fail
            "%s: scratch-peak regression — static@1 now %d nodes, last \
             recorded %d (>10%% higher peak arena)"
            name reference.stats.Engine.scratch_peak_nodes p
        | _ -> ());
        let best_speedup =
          List.fold_left
            (fun acc r ->
              if r.scheduler = Engine.Snapshot then
                Float.max acc (reference.seconds /. r.seconds)
              else acc)
            0.0 runs
        in
        note
          (Printf.sprintf
             "%s: best snapshot speedup %.2fx vs static@1; good functions \
              built once per sweep: %s"
             name best_speedup
             (if built_uniform then "yes" else "NO"));
        rows := !rows @ [ (name, n, runs) ];
        (* Rewritten after every circuit, so a truncated run still
           leaves a well-formed trajectory on disk; history rows append
           as each circuit completes for the same reason. *)
        write_perf_json !perf_out !rows;
        append_history !perf_history ts name n runs)
    !perf_circuits;
  note
    (Printf.sprintf
       "%s written; history appended to %s (hardware domains available \
        here: %d)"
       !perf_out !perf_history
       (Parallel.available_domains ()));
  if !perf_gate then
    match List.rev !failures with
    | [] -> note "perf gate: PASS"
    | fails ->
      List.iter
        (fun m -> Format.fprintf fmt "  GATE FAILURE: %s@." m)
        fails;
      Format.fprintf fmt "@.";
      exit 1

(* ------------------------------------------------------------------ *)

(* Hostile sweep: every collapsed fault under a per-attempt node budget
   AND wall-clock deadline tight enough that many analyses cannot finish
   exactly.  The point is the degradation ladder — exact on the first
   try, exact after escalating retries, bounded estimate — and its
   terminal guarantee: zero crashed faults, a numeric answer for all. *)
let hostile_budget = ref 20_000
let hostile_deadline_ms = ref 50.0
let hostile_circuits = ref [ "c1908" ]
let hostile_reorder = ref true
let hostile_gate = ref false

let hostile () =
  section "hostile"
    "degradation ladder under per-fault budget + deadline caps";
  (* A non-positive deadline disables the wall-clock cap entirely: the
     gated CI lane wants budget-only degradation, which is a
     deterministic node count and therefore machine-independent, where a
     wall-clock deadline would degrade more faults on slower runners. *)
  let deadline_ms =
    if !hostile_deadline_ms > 0.0 then Some !hostile_deadline_ms else None
  in
  let gate = !hostile_gate in
  note
    (Printf.sprintf
       "per-attempt caps: %d BDD nodes, %s (2x/4x on retry); reorder \
        rescue %s%s"
       !hostile_budget
       (match deadline_ms with
       | Some d -> Printf.sprintf "%.0f ms" d
       | None -> "no deadline")
       (if !hostile_reorder then "on" else "off")
       (if gate then "; deterministic sweep (gate mode)" else ""));
  let ts = Unix.time () in
  (* Baselines are read before this run appends its own rows. *)
  let prior = if gate then read_history !perf_history else [] in
  let failures = ref [] in
  Format.fprintf fmt
    "  %-10s %7s %11s %9s %9s %9s %9s %9s %8s %11s %11s %8s@." "circuit"
    "faults" "exact@try0" "by-retry" "rescued" "bounded" "unbnded" "crashed"
    "sift(s)" "mean-width" "worst-width" "secs";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let faults =
        List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
      in
      let n = List.length faults in
      let domains = Parallel.available_domains () in
      (* Gate mode runs deterministically (canonical arena per fault),
         so the degraded count is a function of the circuit and budget
         alone — comparable across machines and runs. *)
      let sweep ~reorder max_retries =
        Engine.analyze_all_stats ~fault_budget:!hostile_budget ?deadline_ms
          ~max_retries ~reorder ~deterministic:gate ~domains
          ~scheduler:Engine.Stealing (Engine.create c) faults
      in
      let (first_try, _), _ = elapsed (fun () -> sweep ~reorder:false 0) in
      let (final, stats), dt =
        elapsed (fun () -> sweep ~reorder:!hostile_reorder 2)
      in
      let count p l = List.length (List.filter p l) in
      let exact0 = count Engine.is_exact first_try in
      let exact2 = count Engine.is_exact final in
      let rescued = stats.Engine.rescued_faults in
      let bounded =
        count (function Engine.Bounded _ -> true | _ -> false) final
      in
      let crashed =
        count (function Engine.Crashed _ -> true | _ -> false) final
      in
      let unbounded = n - exact2 - bounded - crashed in
      let widths =
        List.filter_map
          (fun o ->
            match o with
            | Engine.Bounded _ ->
              Option.map (fun (lo, up) -> up -. lo) (Engine.outcome_bounds o)
            | _ -> None)
          final
      in
      let mean_width =
        if widths = [] then 0.0
        else
          List.fold_left ( +. ) 0.0 widths /. float_of_int (List.length widths)
      in
      let worst_width = List.fold_left Float.max 0.0 widths in
      Format.fprintf fmt
        "  %-10s %7d %11d %9d %9d %9d %9d %9d %8.2f %11.6f %11.6f %8.2f@."
        name n exact0
        (max 0 (exact2 - exact0 - rescued))
        rescued bounded unbounded crashed stats.Engine.sift_seconds
        mean_width worst_width dt;
      note
        (Printf.sprintf "%s: every fault answered numerically: %s" name
           (if crashed = 0 && unbounded = 0 then "YES" else "NO"));
      if rescued > 0 then
        note
          (Printf.sprintf
             "%s: sifted-order retry rescued %d fault(s) the whole retry \
              ladder had given up on (arena %d -> %d nodes)"
             name rescued stats.Engine.sift_nodes_before
             stats.Engine.sift_nodes_after);
      if gate then begin
        (* Cross-run gate, and only then a history row: ungated runs are
           non-deterministic stress displays and must not become
           baselines.  Matching is by circuit and fault count; the CI
           lane pins the budget so baselines compare like for like. *)
        let degraded_count = n - exact2 in
        let baseline =
          List.fold_left
            (fun acc (cells : string array) ->
              if
                cells.(1) = name
                && cells.(3) = "hostile"
                && int_of_string cells.(2) = n
              then Some (int_of_string cells.(8))
              else acc)
            None prior
        in
        (match baseline with
        | Some b when degraded_count > b ->
          failures :=
            Printf.sprintf
              "%s: degraded-count regression — %d of %d faults degraded, \
               last recorded baseline %d"
              name degraded_count n b
            :: !failures
        | Some b ->
          note
            (Printf.sprintf
               "%s: degraded gate: %d degraded <= baseline %d — PASS" name
               degraded_count b)
        | None ->
          note
            (Printf.sprintf
               "%s: no hostile baseline for %d faults in %s; recording \
                this run as one"
               name n !perf_history));
        let run =
          {
            scheduler = Engine.Stealing;
            domains;
            seconds = dt;
            faults_per_sec = float_of_int n /. dt;
            matches_sequential = true;
            degraded = degraded_count;
            stats;
          }
        in
        append_history ~scheduler_name:"hostile" !perf_history ts name n
          [ run ]
      end)
    !hostile_circuits;
  if gate then
    match List.rev !failures with
    | [] -> note "hostile gate: PASS"
    | fails ->
      List.iter (fun m -> Format.fprintf fmt "  GATE FAILURE: %s@." m) fails;
      Format.fprintf fmt "@.";
      exit 1

(* ------------------------------------------------------------------ *)

(* Memory report: the same deterministic sweep twice — collect-only GC
   vs epoch-bracketed scratch reclamation — on one domain so peak arena
   occupancy and apply_steps are exact, machine-independent numbers.
   Epoch mode must reproduce the collect-only outcomes bit for bit and
   must not raise the peak; [-mem-gate] turns both into hard failures. *)
let mem_circuits = ref [ "c499" ]
let mem_budget = ref 20_000
let mem_gate = ref false

let mem () =
  section "mem"
    "epoch scratch reclamation vs collect-only GC (deterministic static@1 \
     sweep under a per-fault node budget)";
  note
    (Printf.sprintf
       "per-attempt budget %d nodes; epoch regions close at the %d-node \
        default"
       !mem_budget Engine.default_epoch_nodes);
  let failures = ref [] in
  Format.fprintf fmt "  %-10s %7s %-6s %12s %8s %5s %8s %9s %12s %8s@."
    "circuit" "faults" "epochs" "peak-nodes" "gc(s)" "gc#" "resets"
    "tenured" "steps" "secs";
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      let faults =
        List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c)
      in
      let n = List.length faults in
      let sweep epochs =
        let engine = Engine.create ~mem_profile:true c in
        let r, dt =
          elapsed (fun () ->
              Engine.analyze_all_stats ~fault_budget:!mem_budget
                ~deterministic:true ~epochs ~domains:1
                ~scheduler:Engine.Static engine faults)
        in
        (engine, r, dt)
      in
      let _, (off_outcomes, off), off_t = sweep false in
      let on_engine, (on_outcomes, on), on_t = sweep true in
      let line label (stats : Engine.sweep_stats) dt =
        Format.fprintf fmt
          "  %-10s %7d %-6s %12d %8.2f %5d %8d %9d %12d %8.2f@." name n
          label stats.Engine.scratch_peak_nodes stats.Engine.gc_seconds
          stats.Engine.gc_collections stats.Engine.epoch_resets
          stats.Engine.tenured_nodes stats.Engine.apply_steps dt
      in
      line "off" off off_t;
      line "on" on on_t;
      if on_outcomes <> off_outcomes then
        failures :=
          Printf.sprintf
            "%s: epoch outcomes differ from the collect-only reference" name
          :: !failures;
      if on.Engine.scratch_peak_nodes > off.Engine.scratch_peak_nodes then
        failures :=
          Printf.sprintf
            "%s: epoch mode raised the peak scratch arena (%d > %d nodes)"
            name on.Engine.scratch_peak_nodes off.Engine.scratch_peak_nodes
          :: !failures;
      note
        (Printf.sprintf
           "%s: outcomes bit-identical: %s; gc wall %.2fs -> %.2fs (%d -> \
            %d collections)"
           name
           (if on_outcomes = off_outcomes then "YES" else "NO")
           off.Engine.gc_seconds on.Engine.gc_seconds
           off.Engine.gc_collections on.Engine.gc_collections);
      (* The lifetime histogram of the epoch run, on the logical
         apply-step clock.  A budget retry rebuilds the manager, so the
         histogram covers the arena since its last rebuild. *)
      let p = Bdd.lifetime_profile (Engine.manager on_engine) in
      Format.fprintf fmt
        "  %s lifetimes (apply-step clock %d, %d deaths, %d live):@." name
        p.Bdd.lp_clock p.Bdd.lp_deaths p.Bdd.lp_live;
      let peak = Array.fold_left max 1 p.Bdd.lp_buckets in
      Array.iteri
        (fun b count ->
          if count > 0 then
            Format.fprintf fmt "    %-14s %9d %s@."
              (if b = 0 then "sub-step"
               else Printf.sprintf "[2^%02d, 2^%02d)" (b - 1) b)
              count
              (String.make (max 1 (count * 40 / peak)) '#'))
        p.Bdd.lp_buckets)
    !mem_circuits;
  if !mem_gate then
    match List.rev !failures with
    | [] -> note "mem gate: PASS"
    | fails ->
      List.iter (fun m -> Format.fprintf fmt "  GATE FAILURE: %s@." m) fails;
      Format.fprintf fmt "@.";
      exit 1

let artifacts =
  [
    ("table1", table1);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("obs-po", obs_po);
    ("scoap", scoap);
    ("approx-vs-exact", approx_vs_exact);
    ("collapse", collapse);
    ("compaction", compaction);
    ("multi", multi);
    ("catapult", catapult);
    ("dft", dft);
    ("transition", transition);
    ("ablation-order", ablation_order);
    ("ablation-decomp", ablation_decomp);
    ("micro", micro);
  ]

(* Topology-oracle calibration: the static per-cone blowup prediction
   ([Topology.predicted_peak], computed before any BDD exists) against
   the measured scratch peak of an exact sequential sweep, across the
   whole suite; then the pre-flag check on the hostile circuit —
   flagged faults jump the retry ladder's intermediate rungs without
   changing a single outcome.  Gate mode appends one history row under
   the pseudo-scheduler "topo" (cell reuse in the fixed 21-column
   schema: faults_per_sec = scratch-peak rank correlation,
   build_seconds = apply-step rank correlation, matches_sequential =
   pre-flagged outcomes bit-identical, degraded = retry attempts saved
   by pre-flagging, snapshot/analysis_wall seconds = baseline/pre-flag
   retry counts, batches = faults pre-flagged, good_functions_built =
   faults flagged, scratch_peak_nodes/apply_steps = suite maxima). *)
let topo_gate = ref false
let topo_sample = ref 3
let topo_budget = ref 20_000

let topo_bench () =
  section "topo" "topology oracle: static blowup prediction calibration";
  let ts = Unix.time () in
  let prior = if !topo_gate then read_history !perf_history else [] in
  let sample l =
    List.filteri (fun i _ -> i mod max 1 !topo_sample = 0) l
  in
  note
    (Printf.sprintf "every %dth collapsed fault, exact sequential sweeps"
       (max 1 !topo_sample));
  Format.fprintf fmt "  %-10s %-20s %-10s %5s %5s %12s %12s %14s@."
    "circuit" "class" "winner" "cutw" "conf" "predicted" "scratch"
    "apply-steps";
  let t0 = Unix.gettimeofday () in
  let total_faults = ref 0 in
  let rows =
    List.map
      (fun name ->
        let c = Bench_suite.find name in
        let topo = Topology.analyze c in
        let faults =
          sample
            (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
        in
        total_faults := !total_faults + List.length faults;
        let _, stats =
          Engine.analyze_all_stats ~domains:1 (Engine.create c) faults
        in
        let predicted = Topology.predicted_peak topo in
        Format.fprintf fmt "  %-10s %-20s %-10s %5d %5b %12.0f %12d %14d@."
          name
          (Topology.class_name topo.Topology.klass)
          (Ordering.name topo.Topology.winner)
          topo.Topology.est_cutwidth topo.Topology.confident predicted
          stats.Engine.scratch_peak_nodes stats.Engine.apply_steps;
        (predicted, stats))
      Bench_suite.names
  in
  let rho_of measure =
    Correlation.spearman
      (List.map (fun (p, s) -> (p, float_of_int (measure s))) rows)
  in
  let rho_scratch = rho_of (fun s -> s.Engine.scratch_peak_nodes) in
  let rho_apply = rho_of (fun s -> s.Engine.apply_steps) in
  note
    (Printf.sprintf
       "rank correlation, predicted peak vs measured: scratch %.3f, \
        apply steps %.3f (%d circuits)"
       rho_scratch rho_apply (List.length rows));
  (* Pre-flag check: the hostile sweep with and without the oracle's
     hostile-fault predicate.  Flagged faults whose first attempt fails
     jump straight to the ladder's top rung, so total retry attempts
     drop; outcomes are bit-identical by construction. *)
  let c = Bench_suite.find "c1908" in
  let faults =
    sample (List.map (fun f -> Fault.Stuck f) (Sa_fault.collapsed_faults c))
  in
  let topo = Topology.analyze c in
  let hostile_pred = Topology.hostile_fault topo ~budget:!topo_budget in
  let flagged = List.length (List.filter hostile_pred faults) in
  let domains = Parallel.available_domains () in
  let sweep ?hostile () =
    Engine.analyze_all_stats ~fault_budget:!topo_budget ?hostile
      ~deterministic:!topo_gate ~domains ~scheduler:Engine.Stealing
      (Engine.create c) faults
  in
  let base, base_stats = sweep () in
  let pre, pre_stats = sweep ~hostile:hostile_pred () in
  let identical = base = pre in
  let saved =
    base_stats.Engine.retry_attempts - pre_stats.Engine.retry_attempts
  in
  note
    (Printf.sprintf
       "c1908 pre-flag (budget %d): %d of %d faults flagged, %d \
        pre-flagged at failure; retry attempts %d -> %d (%d saved), \
        outcomes %s"
       !topo_budget flagged (List.length faults)
       pre_stats.Engine.preflagged_faults base_stats.Engine.retry_attempts
       pre_stats.Engine.retry_attempts saved
       (if identical then "bit-identical" else "DIVERGED"));
  let wall = Unix.gettimeofday () -. t0 in
  if !topo_gate then begin
    let baseline =
      List.fold_left
        (fun acc (cells : string array) ->
          if cells.(3) = "topo" then Some (float_of_string cells.(6))
          else acc)
        None prior
    in
    let failures = ref [] in
    if rho_scratch < 0.6 then
      failures :=
        Printf.sprintf "scratch rank correlation %.3f below the 0.6 floor"
          rho_scratch
        :: !failures;
    (match baseline with
    | Some b when rho_scratch < b -. 0.05 ->
      failures :=
        Printf.sprintf
          "scratch rank correlation regression: %.3f vs recorded \
           baseline %.3f"
          rho_scratch b
        :: !failures
    | Some b ->
      note
        (Printf.sprintf
           "correlation gate: %.3f >= baseline %.3f - 0.05 — PASS"
           rho_scratch b)
    | None ->
      note
        (Printf.sprintf "no topo baseline in %s; recording this run as one"
           !perf_history));
    if not identical then
      failures := "pre-flagged sweep outcomes diverged" :: !failures;
    if saved <= 0 then
      failures :=
        Printf.sprintf "pre-flagging saved no retry attempts (%d -> %d)"
          base_stats.Engine.retry_attempts pre_stats.Engine.retry_attempts
        :: !failures;
    let max_scratch =
      List.fold_left
        (fun a (_, s) -> max a s.Engine.scratch_peak_nodes)
        0 rows
    and total_applies =
      List.fold_left (fun a (_, s) -> a + s.Engine.apply_steps) 0 rows
    in
    append_history_line !perf_history
      (Printf.sprintf
         "%.0f,suite,%d,topo,1,%.6f,%.3f,%b,%d,%.6f,%.6f,%.6f,0.000000,0.000000,0,%d,%d,%d,%d,0,%d"
         ts !total_faults wall rho_scratch identical saved rho_apply
         (float_of_int base_stats.Engine.retry_attempts)
         (float_of_int pre_stats.Engine.retry_attempts)
         pre_stats.Engine.preflagged_faults flagged max_scratch total_applies
         (Parallel.available_domains ()));
    match List.rev !failures with
    | [] -> note "topo gate: PASS"
    | fails ->
      List.iter (fun m -> Format.fprintf fmt "  GATE FAILURE: %s@." m) fails;
      Format.fprintf fmt "@.";
      exit 1
  end

(* The linter's pitch is that topology is nearly free: time the static
   pass (all rules, no exact cross-check) against the same pass with
   every redundancy claim countersigned by the engine, per circuit. *)
let lint_bench () =
  section "lint" "static testability lint: cost of the static pass";
  Format.fprintf fmt
    "  %-10s %8s %8s %12s %12s@." "circuit" "findings" "claims"
    "static (s)" "verified (s)";
  List.iter
    (fun c ->
      let static_cfg = { Lint.default_config with Lint.verify = false } in
      let diags, static_t =
        elapsed (fun () -> Lint.run ~config:static_cfg c)
      in
      let claims =
        List.fold_left
          (fun n d -> n + List.length d.Diagnostic.claims)
          0 diags
      in
      let verified_t =
        if claims = 0 then static_t
        else snd (elapsed (fun () -> Lint.run c))
      in
      Format.fprintf fmt "  %-10s %8d %8d %12.4f %12.4f@."
        c.Circuit.title (List.length diags) claims static_t verified_t)
    (Bench_suite.all ());
  note
    "static column: all thirteen rules including the budgeted BDD tier; \
     verified column adds the exact engine countersigning every \
     redundancy claim"

(* ------------------------------------------------------------------ *)

(* Serve load generator: an in-process dpa-serve daemon hammered by
   concurrent client threads over a Unix socket with a mixed
   lint/analyze workload.  Reports requests/s and latency percentiles,
   and records one bench-history row under the pseudo-scheduler
   "serve" so the service trajectory accumulates beside the sweep
   series without ever being confused with one.  Cell reuse in that
   row (the schema is fixed at 21 columns): faults = total requests,
   domains = client threads, faults_per_sec = requests/s, degraded =
   busy rejections, build_seconds = p50 latency, snapshot_seconds =
   p99 latency, batches = lint requests, good_functions_built =
   analyze requests. *)
let serve_clients = ref 8
let serve_requests = ref 240
let serve_circuits = ref [ "c432"; "c499"; "c880" ]
let serve_workers = ref 2
let serve_gate = ref false

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (p * n / 100))

let serve_bench () =
  section "serve" "resident daemon under concurrent mixed load";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dpa-bench-%d.sock" (Unix.getpid ()))
  in
  let clients = max 1 !serve_clients in
  let total = max clients !serve_requests in
  note
    (Printf.sprintf
       "%d requests (1 lint : 2 analyze) from %d client threads, %d \
        worker(s), circuits %s"
       total clients !serve_workers
       (String.concat "," !serve_circuits));
  let server =
    Server.start
      {
        (Server.default_config ~socket:(Server.Unix_socket sock)) with
        Server.workers = !serve_workers;
      }
  in
  (* Expected per-circuit fault counts, for dropped/duplicate checks. *)
  let expected = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let c = Bench_suite.find name in
      Hashtbl.replace expected name
        (List.length (Sa_fault.collapsed_faults c)))
    !serve_circuits;
  let circuits = Array.of_list !serve_circuits in
  let latencies = Array.make total 0.0 in
  let busy = Atomic.make 0 and errors = Atomic.make 0 in
  let stream_ok = Atomic.make true in
  let run_client k =
    let cl = Client.connect_unix_retry sock in
    let i = ref k in
    while !i < total do
      let r = !i in
      let name = circuits.(r mod Array.length circuits) in
      let id = Printf.sprintf "q%d" r in
      let t0 = Unix.gettimeofday () in
      (if r mod 3 = 0 then begin
         Client.send cl (Protocol.lint_request ~id (Protocol.Named name));
         let rec drain () =
           match Client.recv_response cl with
           | Ok (Protocol.Done _) -> ()
           | Ok (Protocol.Busy _) -> Atomic.incr busy
           | Ok (Protocol.Error_response _) | Error _ -> Atomic.incr errors
           | Ok _ -> drain ()
         in
         drain ()
       end
       else
         match Client.analyze cl ~id (Protocol.Named name) with
         | Ok { Client.final = Protocol.Done _; outcomes; _ } ->
           (* Every fault index exactly once: nothing dropped, nothing
              duplicated, even under coalescing and cache churn. *)
           let n = Hashtbl.find expected name in
           let seen = Array.make n 0 in
           List.iter
             (fun (j, _) ->
               if j >= 0 && j < n then seen.(j) <- seen.(j) + 1)
             outcomes;
           if not (Array.for_all (fun c -> c = 1) seen) then
             Atomic.set stream_ok false
         | Ok { Client.final = Protocol.Busy _; _ } -> Atomic.incr busy
         | Ok _ | Error _ -> Atomic.incr errors);
      latencies.(r) <- Unix.gettimeofday () -. t0;
      i := !i + clients
    done;
    Client.close cl
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun k -> Thread.create run_client k) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Server.stop server;
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 50 and p99 = percentile sorted 99 in
  let busy = Atomic.get busy and errors = Atomic.get errors in
  let ok = Atomic.get stream_ok && errors = 0 in
  let rps = float_of_int total /. wall in
  Format.fprintf fmt
    "  %d requests in %.2fs: %.1f req/s, latency p50 %.1f ms / p99 %.1f \
     ms, %d busy, %d error(s), streams %s@."
    total wall rps (1000.0 *. p50) (1000.0 *. p99) busy errors
    (if ok then "intact" else "CORRUPTED");
  let lints = (total + 2) / 3 in
  append_history_line !perf_history
    (Printf.sprintf
       "%.0f,mixed,%d,serve,%d,%.6f,%.3f,%b,%d,%.6f,%.6f,%.6f,0.000000,0.000000,0,%d,%d,0,0,0,%d"
       (Unix.time ()) total clients wall rps ok busy p50 p99 wall lints
       (total - lints)
       (Parallel.available_domains ()));
  if !serve_gate && not ok then begin
    note "serve gate: FAIL (dropped, duplicated or errored results)";
    exit 1
  end;
  if !serve_gate then note "serve gate: PASS"

(* [perf], [trend], [hostile], [mem], [lint] and [serve] are
   dispatchable by name but deliberately not part of [all]: timing
   measurements and stress experiments, not paper artifacts. *)
let commands =
  artifacts
  @ [
      ("perf", perf); ("trend", trend); ("hostile", hostile);
      ("mem", mem); ("lint", lint_bench); ("serve", serve_bench);
      ("topo", topo_bench);
    ]

let usage () =
  Format.fprintf fmt
    "usage: main.exe [-sample N] [-seed N] [-perf-circuits A,B,..] \
     [-perf-domains 1,2,..] [-perf-schedulers snapshot,stealing,..] \
     [-perf-out FILE] [-perf-history FILE] [-perf-trend-out FILE] \
     [-perf-gate] [-hostile-budget N] [-hostile-deadline-ms F] \
     [-hostile-circuits A,B,..] [-hostile-reorder auto|off] \
     [-hostile-gate] [-mem-circuits A,B,..] [-mem-budget N] [-mem-gate] \
     [-serve-clients N] [-serve-requests N] [-serve-circuits A,B,..] \
     [-serve-workers N] [-serve-gate] [-topo-gate] [-topo-sample N] \
     [-topo-budget N] \
     [all | perf | trend | hostile | mem | lint | serve | topo | %s]...@."
    (String.concat " | " (List.map fst artifacts))

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc = function
    | "-sample" :: n :: rest ->
      config :=
        { !config with Experiments.bridge_sample = int_of_string n };
      parse acc rest
    | "-seed" :: n :: rest ->
      config := { !config with Experiments.seed = int_of_string n };
      parse acc rest
    | "-perf-circuits" :: names :: rest ->
      perf_circuits := String.split_on_char ',' names;
      parse acc rest
    | "-perf-domains" :: counts :: rest ->
      perf_domain_counts :=
        String.split_on_char ',' counts |> List.map int_of_string;
      parse acc rest
    | "-perf-schedulers" :: names :: rest ->
      perf_schedulers :=
        String.split_on_char ',' names |> List.map scheduler_of_string;
      parse acc rest
    | "-perf-out" :: path :: rest ->
      perf_out := path;
      parse acc rest
    | "-perf-history" :: path :: rest ->
      perf_history := path;
      parse acc rest
    | "-perf-trend-out" :: path :: rest ->
      perf_trend_out := path;
      parse acc rest
    | "-perf-gate" :: rest ->
      perf_gate := true;
      parse acc rest
    | "-hostile-budget" :: n :: rest ->
      hostile_budget := int_of_string n;
      parse acc rest
    | "-hostile-deadline-ms" :: f :: rest ->
      hostile_deadline_ms := float_of_string f;
      parse acc rest
    | "-hostile-circuits" :: names :: rest ->
      hostile_circuits := String.split_on_char ',' names;
      parse acc rest
    | "-hostile-reorder" :: mode :: rest ->
      (match mode with
      | "auto" | "on" -> hostile_reorder := true
      | "off" -> hostile_reorder := false
      | s ->
        Format.eprintf "hostile: unknown reorder mode %S (auto|off)@." s;
        exit 2);
      parse acc rest
    | "-hostile-gate" :: rest ->
      hostile_gate := true;
      parse acc rest
    | "-mem-circuits" :: names :: rest ->
      mem_circuits := String.split_on_char ',' names;
      parse acc rest
    | "-mem-budget" :: n :: rest ->
      mem_budget := int_of_string n;
      parse acc rest
    | "-mem-gate" :: rest ->
      mem_gate := true;
      parse acc rest
    | "-serve-clients" :: n :: rest ->
      serve_clients := int_of_string n;
      parse acc rest
    | "-serve-requests" :: n :: rest ->
      serve_requests := int_of_string n;
      parse acc rest
    | "-serve-circuits" :: names :: rest ->
      serve_circuits := String.split_on_char ',' names;
      parse acc rest
    | "-serve-workers" :: n :: rest ->
      serve_workers := int_of_string n;
      parse acc rest
    | "-serve-gate" :: rest ->
      serve_gate := true;
      parse acc rest
    | "-topo-gate" :: rest ->
      topo_gate := true;
      parse acc rest
    | "-topo-sample" :: n :: rest ->
      topo_sample := int_of_string n;
      parse acc rest
    | "-topo-budget" :: n :: rest ->
      topo_budget := int_of_string n;
      parse acc rest
    | "all" :: rest -> parse (acc @ List.map fst artifacts) rest
    | name :: rest -> parse (acc @ [ name ]) rest
    | [] -> acc
  in
  let requested = parse [] args in
  let requested =
    if requested = [] then List.map fst artifacts else requested
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name commands with
      | Some run -> run ()
      | None ->
        Format.fprintf fmt "unknown artifact %S@." name;
        usage ();
        exit 2)
    requested;
  Format.fprintf fmt "@.total wall time: %.1fs@."
    (Unix.gettimeofday () -. t0)
